//! One replay: browser + per-group servers + the simulated network.
//!
//! This is the Mahimahi-equivalent core of the paper's testbed (§4.1): the
//! page's server groups become independent replay servers behind the
//! emulated DSL access link, the browser loads the page, and we collect the
//! timing metrics plus the server-side request trace.

use crate::prepared::PreparedPage;
use bytes::{Bytes, BytesMut};
use h2push_browser::{Browser, BrowserAction, BrowserConfig, LoadResult, TransportMode};
use h2push_netsim::{
    ConnId, Dir, NetEvent, NetStats, Network, NetworkSpec, ServerId, ServerSpec, SimDuration,
    SimTime,
};
use h2push_server::{H1ReplayServer, ReplayServer};
use h2push_strategies::{RunTrace, Strategy};
use h2push_trace::{conn_label, TraceHandle};
use h2push_webmodel::{Page, RecordDb, ResourceId};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Which protocol the replay runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Protocol {
    /// HTTP/2 (with whatever push strategy is configured).
    #[default]
    H2,
    /// HTTP/1.1 baseline: six connections per origin, no push (any push
    /// strategy is ignored).
    H1,
}

/// Configuration of one replay.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Access-link profile (defaults to the paper's DSL).
    pub network: NetworkSpec,
    /// Browser knobs (push enablement is derived from the strategy).
    pub browser: BrowserConfig,
    /// The push strategy under test.
    pub strategy: Strategy,
    /// Protocol to replay over.
    pub protocol: Protocol,
    /// Extra one-way delay per server group (internet mode gives far-away
    /// third parties their real distance; the testbed leaves this empty).
    pub server_extra_delay: HashMap<usize, SimDuration>,
    /// Per-request think time on the servers (zero in the testbed, §4.1).
    pub server_think: SimDuration,
    /// Resources already in the browser cache (warm revisit).
    pub warm_cache: Vec<ResourceId>,
    /// Whether servers honor `cache-digest` headers (suppressing pushes of
    /// cached resources). Irrelevant on cold loads.
    pub server_honors_digest: bool,
    /// Abort the replay after this much simulated time.
    pub deadline: SimDuration,
    /// Watchdog: abort the replay once the netsim loop has processed this
    /// many internal events. Sim-time deadlines cannot catch a zero-delay
    /// livelock (two endpoints ping-ponging frames without advancing the
    /// clock past the deadline check granularity is still bounded, but an
    /// adversarial peer can force unbounded *work* per unit sim-time); the
    /// event budget bounds work directly. The default is far above any
    /// benign replay.
    pub watchdog_events: u64,
    /// Adversarial-peer resource limits applied to *both* endpoints of
    /// every HTTP/2 connection in the replay. Purely local enforcement —
    /// never advertised in SETTINGS — so swapping limits never changes
    /// wire bytes on benign workloads (asserted by the equality suite).
    pub limits: h2push_h2proto::ConnLimits,
}

impl ReplayConfig {
    /// The paper's deterministic testbed profile for `strategy`.
    pub fn testbed(strategy: Strategy) -> Self {
        ReplayConfig {
            network: NetworkSpec::dsl_testbed(),
            browser: BrowserConfig::default(),
            strategy,
            protocol: Protocol::H2,
            server_extra_delay: HashMap::new(),
            server_think: SimDuration::ZERO,
            warm_cache: Vec::new(),
            server_honors_digest: true,
            deadline: SimDuration::from_millis(180_000),
            watchdog_events: 50_000_000,
            limits: h2push_h2proto::ConnLimits::new(),
        }
    }
}

/// What a replay produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// Browser-side measurements.
    pub load: LoadResult,
    /// Request order observed by the main server (for §4.2 push-order
    /// computation).
    pub trace: RunTrace,
    /// Body bytes the main server pushed.
    pub server_pushed_bytes: u64,
    /// Network-level fault and loss-recovery counters (all zero on a
    /// fault-free link).
    pub net: NetStats,
}

/// Replay failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The simulation quiesced before onload (a wiring bug or an
    /// unservable page).
    Stalled { at: SimTime },
    /// The deadline passed.
    DeadlineExceeded,
    /// The event-count watchdog fired: the netsim loop processed more
    /// internal events than [`ReplayConfig::watchdog_events`] allows —
    /// the run was livelocking (adversarial input or a wiring bug).
    Watchdog { events: u64 },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Stalled { at } => write!(f, "replay stalled at {at}"),
            ReplayError::DeadlineExceeded => write!(f, "replay deadline exceeded"),
            ReplayError::Watchdog { events } => {
                write!(f, "watchdog fired after {events} simulation events")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// The immutable inputs of a replay: the page model and the record-and-
/// replay response database derived from it. Built once per page (the DB
/// walk is the expensive part) and shared by reference across every
/// repetition, connection and thread — `Arc` clones are pointer bumps.
#[derive(Debug, Clone)]
pub struct ReplayInputs {
    /// The page under replay.
    pub page: Arc<Page>,
    /// Recorded responses for every resource of `page`.
    pub db: Arc<RecordDb>,
    /// Page-level precomputation ([`PreparedPage`]); `None` runs the live
    /// path. Attached with [`ReplayInputs::prepared`]; outputs are
    /// byte-identical either way.
    pub(crate) prepared: Option<Arc<PreparedPage>>,
}

impl ReplayInputs {
    /// Record `page` once and wrap both halves for sharing.
    #[deprecated(note = "pass the page to `RunPlan::new` (or use `ReplayInputs::from`)")]
    pub fn new(page: Page) -> Self {
        Self::from(page)
    }

    /// Same, for a page that is already shared.
    #[deprecated(note = "pass the Arc to `RunPlan::new` (or use `ReplayInputs::from`)")]
    pub fn from_arc(page: Arc<Page>) -> Self {
        Self::from(page)
    }

    /// Attach a freshly built [`PreparedPage`] (build once, share across
    /// every rep and config touching this page). No observable output
    /// changes — only per-rep work is skipped.
    pub fn prepared(mut self) -> Self {
        if self.prepared.is_none() {
            self.prepared = Some(Arc::new(PreparedPage::build(&self.page)));
        }
        self
    }

    /// Attach an existing (shared) [`PreparedPage`].
    pub fn with_prepared(mut self, prepared: Arc<PreparedPage>) -> Self {
        self.prepared = Some(prepared);
        self
    }

    /// The attached precomputation, if any.
    pub fn prepared_page(&self) -> Option<&Arc<PreparedPage>> {
        self.prepared.as_ref()
    }
}

impl From<Arc<Page>> for ReplayInputs {
    fn from(page: Arc<Page>) -> Self {
        let db = Arc::new(RecordDb::record(&page));
        ReplayInputs { page, db, prepared: None }
    }
}

impl From<Page> for ReplayInputs {
    fn from(page: Page) -> Self {
        Self::from(Arc::new(page))
    }
}

impl From<&Page> for ReplayInputs {
    fn from(page: &Page) -> Self {
        Self::from(Arc::new(page.clone()))
    }
}

impl From<&ReplayInputs> for ReplayInputs {
    fn from(inputs: &ReplayInputs) -> Self {
        inputs.clone()
    }
}

/// One direction of an in-flight TCP stream: a FIFO of `Bytes` chunks.
/// Producers queue their output buffers as-is (no copy); deliveries pop
/// by byte count, slicing the front chunk in place via O(1) `split_to`.
#[derive(Default)]
struct ByteFifo {
    chunks: VecDeque<Bytes>,
    len: usize,
}

impl ByteFifo {
    fn push(&mut self, b: Bytes) {
        self.len += b.len();
        self.chunks.push_back(b);
    }

    /// Pop up to `max` bytes as one contiguous buffer. A delivery that
    /// spans queued chunks concatenates them so the receiver still sees
    /// exactly one `on_bytes` call per network delivery.
    fn pop(&mut self, max: usize) -> Bytes {
        let take = max.min(self.len);
        if take == 0 {
            return Bytes::new();
        }
        self.len -= take;
        let front = self.chunks.front_mut().expect("non-empty fifo");
        if take <= front.len() {
            let out = front.split_to(take);
            if front.is_empty() {
                self.chunks.pop_front();
            }
            return out;
        }
        let mut buf = BytesMut::with_capacity(take);
        let mut rem = take;
        while rem > 0 {
            let front = self.chunks.front_mut().expect("non-empty fifo");
            let n = rem.min(front.len());
            buf.extend_from_slice(&front.split_to(n));
            if front.is_empty() {
                self.chunks.pop_front();
            }
            rem -= n;
        }
        buf.freeze()
    }
}

struct ConnCtx {
    group: usize,
    slot: usize,
    /// Bytes handed to netsim (up = client→server) not yet delivered.
    up: ByteFifo,
    down: ByteFifo,
}

/// A per-connection replay server of either protocol. (Boxed: the H2
/// server carries the page, record DB and scheduler state and is much
/// larger than the H1 half.)
enum AnyServer {
    H2(Box<ReplayServer>),
    H1(H1ReplayServer),
}

impl AnyServer {
    fn on_bytes(&mut self, bytes: &[u8], now: SimTime) {
        match self {
            AnyServer::H2(s) => s.on_bytes(bytes, now),
            AnyServer::H1(s) => s.on_bytes(bytes, now),
        }
    }

    fn wants_send(&self) -> bool {
        match self {
            AnyServer::H2(s) => s.wants_send(),
            AnyServer::H1(s) => s.wants_send(),
        }
    }

    fn produce(&mut self, max: usize) -> Bytes {
        match self {
            AnyServer::H2(s) => s.produce(max),
            AnyServer::H1(s) => s.produce(max),
        }
    }
}

/// Replay `page` once under `cfg`.
///
/// Convenience wrapper that records the page on every call; repeated runs
/// of the same page should build [`ReplayInputs`] once and use
/// [`replay_shared`].
pub fn replay(page: &Page, cfg: &ReplayConfig) -> Result<ReplayOutcome, ReplayError> {
    replay_shared(&ReplayInputs::from(page), cfg)
}

/// Replay `inputs` once under `cfg`, sharing (not cloning) the page and
/// response database with the browser and every server connection.
pub fn replay_shared(
    inputs: &ReplayInputs,
    cfg: &ReplayConfig,
) -> Result<ReplayOutcome, ReplayError> {
    replay_with_trace(inputs, cfg, &TraceHandle::off())
}

/// The replay engine proper. `trace` is injected into every subsystem;
/// when it is off (the [`replay_shared`] path) each emission site costs a
/// single branch, so traced and untraced runs take identical decisions.
pub(crate) fn replay_with_trace(
    inputs: &ReplayInputs,
    cfg: &ReplayConfig,
    trace: &TraceHandle,
) -> Result<ReplayOutcome, ReplayError> {
    let page = &inputs.page;
    let mut net = Network::new(cfg.network.clone());
    net.set_trace(trace.clone());
    let mut browser_cfg = cfg.browser.clone();
    browser_cfg.enable_push =
        cfg.protocol == Protocol::H2 && !matches!(cfg.strategy, Strategy::NoPush);
    browser_cfg.warm_cache = cfg.warm_cache.clone();
    browser_cfg.transport = match cfg.protocol {
        Protocol::H2 => TransportMode::H2,
        Protocol::H1 => TransportMode::H1,
    };
    browser_cfg.limits = cfg.limits;
    let mut browser = match &inputs.prepared {
        Some(p) => {
            let mut b = Browser::with_scan(Arc::clone(page), browser_cfg, Arc::clone(&p.scan));
            b.set_hpack_block_cache(p.hpack.clone());
            b
        }
        None => Browser::new(Arc::clone(page), browser_cfg),
    };
    browser.set_trace(trace.clone());
    let mut servers: HashMap<(usize, usize), AnyServer> = HashMap::new();
    let mut conn_of_slot: HashMap<(usize, usize), ConnId> = HashMap::new();
    let mut ctx: HashMap<ConnId, ConnCtx> = HashMap::new();
    let main_group = page.server_group_of(ResourceId(0));
    let deadline = SimTime::ZERO + cfg.deadline;

    let actions = browser.start(net.now());
    let mut queue: VecDeque<BrowserAction> = actions.into();

    // Process browser actions; may enqueue more via the closure-free loop.
    macro_rules! drain_actions {
        () => {
            while let Some(a) = queue.pop_front() {
                match a {
                    BrowserAction::OpenConnection { group, slot } => {
                        let spec = match cfg.server_extra_delay.get(&group) {
                            Some(&d) => ServerSpec::with_extra_delay(d),
                            None => ServerSpec { think: cfg.server_think, ..Default::default() },
                        };
                        let sid: ServerId = net.add_server(spec);
                        let conn = net.connect(sid);
                        conn_of_slot.insert((group, slot), conn);
                        ctx.insert(
                            conn,
                            ConnCtx {
                                group,
                                slot,
                                up: ByteFifo::default(),
                                down: ByteFifo::default(),
                            },
                        );
                        let server = match cfg.protocol {
                            Protocol::H2 => {
                                let mut s = ReplayServer::new(
                                    Arc::clone(&inputs.page),
                                    Arc::clone(&inputs.db),
                                    group,
                                    &cfg.strategy,
                                );
                                s.set_honor_cache_digest(cfg.server_honors_digest);
                                s.set_limits(cfg.limits);
                                if let Some(p) = &inputs.prepared {
                                    s.set_prepared(Arc::clone(&p.server));
                                    s.set_hpack_block_cache(p.hpack.clone());
                                }
                                if trace.is_on() {
                                    s.set_trace(trace.clone(), conn_label(group, slot));
                                }
                                AnyServer::H2(Box::new(s))
                            }
                            Protocol::H1 => {
                                AnyServer::H1(H1ReplayServer::new(Arc::clone(&inputs.db)))
                            }
                        };
                        servers.insert((group, slot), server);
                    }
                    BrowserAction::SendBytes { group, slot, bytes } => {
                        let conn = conn_of_slot[&(group, slot)];
                        let c = ctx.get_mut(&conn).expect("unknown conn");
                        net.send(conn, Dir::Up, bytes.len());
                        c.up.push(bytes);
                    }
                    BrowserAction::SetTimer { at, token } => {
                        net.schedule(at, token);
                    }
                }
            }
        };
    }

    // Pull response bytes from a server while the TCP window has room.
    macro_rules! pump_server {
        ($conn:expr, $key:expr) => {{
            loop {
                let server = servers.get_mut(&$key).expect("server exists");
                if !server.wants_send() {
                    net.set_hungry($conn, Dir::Down, false);
                    break;
                }
                match net.set_hungry($conn, Dir::Down, true) {
                    Some(window) => {
                        let bytes = server.produce(window);
                        if bytes.is_empty() {
                            // Flow-control (H2-level) blocked: wait for
                            // client window updates.
                            net.set_hungry($conn, Dir::Down, false);
                            break;
                        }
                        let c = ctx.get_mut(&$conn).expect("ctx");
                        net.send($conn, Dir::Down, bytes.len());
                        c.down.push(bytes);
                    }
                    None => break, // TCP window full; SendReady will fire
                }
            }
        }};
    }

    drain_actions!();

    loop {
        if browser.done() {
            break;
        }
        let Some((t, ev)) = net.step() else {
            return Err(ReplayError::Stalled { at: net.now() });
        };
        // Publish the shared trace clock so emission sites without a time
        // parameter (endpoint state machines) stamp with event time.
        trace.set_now(t.as_micros());
        if t > deadline {
            return Err(ReplayError::DeadlineExceeded);
        }
        if net.events_processed() > cfg.watchdog_events {
            let events = net.events_processed();
            trace.emit(h2push_trace::TraceEvent::WatchdogFired { events });
            return Err(ReplayError::Watchdog { events });
        }
        match ev {
            NetEvent::Connected { conn } => {
                let (group, slot) = (ctx[&conn].group, ctx[&conn].slot);
                queue.extend(browser.on_connected(group, slot, t));
                drain_actions!();
                pump_server!(conn, (group, slot));
            }
            NetEvent::Delivered { conn, dir: Dir::Up, bytes } => {
                let (group, slot) = (ctx[&conn].group, ctx[&conn].slot);
                let chunk = ctx.get_mut(&conn).expect("ctx").up.pop(bytes);
                servers.get_mut(&(group, slot)).expect("server").on_bytes(&chunk, t);
                pump_server!(conn, (group, slot));
            }
            NetEvent::Delivered { conn, dir: Dir::Down, bytes } => {
                let (group, slot) = (ctx[&conn].group, ctx[&conn].slot);
                let chunk = ctx.get_mut(&conn).expect("ctx").down.pop(bytes);
                queue.extend(browser.on_bytes(group, slot, &chunk, t));
                drain_actions!();
                // The browser may have ACKed at the H2 level (window
                // updates) — give the server a chance to continue.
                pump_server!(conn, (group, slot));
            }
            NetEvent::SendReady { conn, dir: Dir::Down, .. } => {
                let (group, slot) = (ctx[&conn].group, ctx[&conn].slot);
                pump_server!(conn, (group, slot));
            }
            NetEvent::SendReady { .. } => {
                // The browser sends eagerly; it never registers hunger.
            }
            NetEvent::App { token } => {
                queue.extend(browser.on_timer(token, t));
                drain_actions!();
                // Timers can trigger new requests on any connection; make
                // sure all servers with pending output are pulling. Pump in
                // (group, slot) order — HashMap iteration order varies per
                // instance and must not leak into the simulation.
                let mut pending: Vec<((usize, usize), ConnId)> =
                    conn_of_slot.iter().map(|(&k, &c)| (k, c)).collect();
                pending.sort_unstable_by_key(|&(k, _)| k);
                for (key, conn) in pending {
                    if servers.get(&key).map(|s| s.wants_send()).unwrap_or(false) {
                        pump_server!(conn, key);
                    }
                }
            }
        }
    }

    let main_server = servers.get(&(main_group, 0)).and_then(|s| match s {
        AnyServer::H2(s) => Some(s),
        AnyServer::H1(_) => None,
    });
    let trace = RunTrace {
        order: main_server
            .map(|s| s.observations().iter().map(|o| o.resource).collect())
            .unwrap_or_default(),
    };
    Ok(ReplayOutcome {
        load: browser.result(),
        server_pushed_bytes: main_server.map(|s| s.pushed_bytes()).unwrap_or(0),
        trace,
        net: net.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2push_webmodel::{PageBuilder, ResourceSpec};

    fn page() -> Page {
        let mut b = PageBuilder::new("replay-test", "r.test", 60_000, 5_000);
        let third = b.origin("cdn.other.net", 1, false);
        b.resource(ResourceSpec::css(0, 20_000, 300, 0.3));
        b.resource(ResourceSpec::js(0, 25_000, 1_000, 30_000));
        b.resource(ResourceSpec::image(0, 40_000, 20_000, true, 2.0));
        b.resource(ResourceSpec::js_async(third, 10_000, 30_000, 5_000));
        b.text_paint(10_000, 1.0);
        b.text_paint(40_000, 1.0);
        b.build()
    }

    #[test]
    fn no_push_replay_completes() {
        let out = replay(&page(), &ReplayConfig::testbed(Strategy::NoPush)).unwrap();
        assert!(out.load.finished());
        // connectEnd ≈ 3 RTT (DNS local, TCP+TLS1.2) = ~150 ms.
        let ce = out.load.connect_end.as_millis_f64();
        assert!((145.0..165.0).contains(&ce), "connectEnd {ce}");
        // PLT plausible: several RTTs + transfer + exec, well under 5 s.
        let plt = out.load.plt();
        assert!((200.0..5_000.0).contains(&plt), "plt {plt}");
        assert_eq!(out.server_pushed_bytes, 0);
        // The main server saw the html + 3 same-group requests.
        assert_eq!(out.trace.order.len(), 4);
        assert_eq!(out.trace.order[0], ResourceId(0));
    }

    #[test]
    fn replay_is_deterministic() {
        let cfg = ReplayConfig::testbed(Strategy::NoPush);
        let a = replay(&page(), &cfg).unwrap();
        let b = replay(&page(), &cfg).unwrap();
        assert_eq!(a.load.plt(), b.load.plt());
        assert_eq!(a.load.speed_index(), b.load.speed_index());
        assert_eq!(a.trace.order, b.trace.order);
    }

    #[test]
    fn replay_shared_matches_cold_replay() {
        // Sharing the page/DB through Arc must not change a single output.
        let p = page();
        let cfg = ReplayConfig::testbed(Strategy::NoPush);
        let cold = replay(&p, &cfg).unwrap();
        let inputs = ReplayInputs::from(p);
        let a = replay_shared(&inputs, &cfg).unwrap();
        let b = replay_shared(&inputs, &cfg).unwrap();
        assert_eq!(cold.load.plt(), a.load.plt());
        assert_eq!(cold.load.speed_index(), a.load.speed_index());
        assert_eq!(cold.trace.order, a.trace.order);
        assert_eq!(a.load.plt(), b.load.plt());
        assert_eq!(a.trace.order, b.trace.order);
    }

    #[test]
    fn watchdog_aborts_runaway_replays() {
        let mut cfg = ReplayConfig::testbed(Strategy::NoPush);
        cfg.watchdog_events = 10; // no page loads in 10 simulation events
        match replay(&page(), &cfg) {
            Err(ReplayError::Watchdog { events }) => assert!(events > 10),
            other => panic!("expected watchdog, got {other:?}"),
        }
    }

    #[test]
    fn default_watchdog_budget_is_inert() {
        // The default budget is far above what a benign replay consumes:
        // outputs are identical to a watchdog-free notion of the run.
        let p = page();
        let cfg = ReplayConfig::testbed(Strategy::NoPush);
        let a = replay(&p, &cfg).unwrap();
        let mut huge = ReplayConfig::testbed(Strategy::NoPush);
        huge.watchdog_events = u64::MAX;
        let b = replay(&p, &huge).unwrap();
        assert_eq!(a.load, b.load);
        assert_eq!(a.trace.order, b.trace.order);
    }

    #[test]
    fn push_list_transfers_push_bytes() {
        let p = page();
        let strategy = Strategy::PushList { order: vec![ResourceId(1), ResourceId(2)] };
        let out = replay(&p, &ReplayConfig::testbed(strategy)).unwrap();
        assert!(out.load.finished());
        assert_eq!(out.server_pushed_bytes, 45_000);
        assert_eq!(out.load.pushed_count, 2);
        // Pushed resources are not requested: html + image only.
        assert_eq!(out.trace.order.len(), 2);
    }

    #[test]
    fn interleaved_strategy_completes_and_pushes() {
        let p = page();
        let strategy = Strategy::Interleaved {
            offset: 6_000,
            critical: vec![ResourceId(1)],
            after: vec![ResourceId(3)],
        };
        let out = replay(&p, &ReplayConfig::testbed(strategy)).unwrap();
        assert!(out.load.finished());
        assert_eq!(out.load.pushed_count, 2);
    }

    #[test]
    fn push_helps_late_referenced_css_on_large_html() {
        // A large document whose CSS is referenced late: push should beat
        // no-push on first paint substantially (the paper's premise).
        let mut b = PageBuilder::new("late-css", "l.test", 150_000, 3_000);
        b.resource(ResourceSpec::css(0, 30_000, 2_000, 0.3));
        b.text_paint(10_000, 1.0);
        let p = b.build();
        let no_push = replay(&p, &ReplayConfig::testbed(Strategy::NoPush)).unwrap();
        let push = replay(
            &p,
            &ReplayConfig::testbed(Strategy::Interleaved {
                offset: 4_096,
                critical: vec![ResourceId(1)],
                after: vec![],
            }),
        )
        .unwrap();
        let fp_no = no_push.load.first_paint.unwrap().since(no_push.load.connect_end);
        let fp_push = push.load.first_paint.unwrap().since(push.load.connect_end);
        assert!(
            fp_push.as_millis_f64() < fp_no.as_millis_f64() * 0.8,
            "interleaving must speed first paint: {fp_push} vs {fp_no}"
        );
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;
    use h2push_strategies::push_all;
    use h2push_webmodel::{PageBuilder, ResourceSpec};

    fn page() -> Page {
        let mut b = PageBuilder::new("warm", "warm.test", 40_000, 4_000);
        b.resource(ResourceSpec::css(0, 20_000, 300, 0.4)); // 1
        b.resource(ResourceSpec::js(0, 30_000, 1_000, 10_000)); // 2
        b.resource(ResourceSpec::image(0, 25_000, 10_000, true, 1.5)); // 3
        b.text_paint(8_000, 1.0);
        b.build()
    }

    #[test]
    fn warm_cache_speeds_up_the_load() {
        let p = page();
        let cold = replay(&p, &ReplayConfig::testbed(Strategy::NoPush)).unwrap();
        let mut cfg = ReplayConfig::testbed(Strategy::NoPush);
        cfg.warm_cache = vec![ResourceId(1), ResourceId(2), ResourceId(3)];
        let warm = replay(&p, &cfg).unwrap();
        assert!(
            warm.load.plt() < cold.load.plt() * 0.8,
            "warm {} vs cold {}",
            warm.load.plt(),
            cold.load.plt()
        );
        // Cached resources never hit the network: only the HTML request.
        assert_eq!(warm.trace.order.len(), 1);
    }

    #[test]
    fn digest_aware_server_skips_cached_pushes() {
        let p = page();
        let mut cfg = ReplayConfig::testbed(push_all(&p, &[]));
        cfg.warm_cache = vec![ResourceId(1), ResourceId(2)];
        let out = replay(&p, &cfg).unwrap();
        // Only the (uncached) image is pushed.
        assert_eq!(out.server_pushed_bytes, 25_000);
        assert_eq!(out.load.cancelled_pushes, 0, "nothing to cancel — never promised");
    }

    #[test]
    fn digest_oblivious_server_wastes_push_bytes() {
        let p = page();
        let mut cfg = ReplayConfig::testbed(push_all(&p, &[]));
        cfg.warm_cache = vec![ResourceId(1), ResourceId(2)];
        cfg.server_honors_digest = false;
        let out = replay(&p, &cfg).unwrap();
        // The server queues everything; the client cancels the cached two
        // (bytes may already be in flight — the §2.1 waste).
        assert_eq!(out.server_pushed_bytes, 75_000);
        assert_eq!(out.load.cancelled_pushes, 2);
        assert!(out.load.finished());
    }

    #[test]
    fn warm_cache_with_digest_is_not_slower_than_cold_push() {
        let p = page();
        let cold = replay(&p, &ReplayConfig::testbed(push_all(&p, &[]))).unwrap();
        let mut cfg = ReplayConfig::testbed(push_all(&p, &[]));
        cfg.warm_cache = vec![ResourceId(1), ResourceId(2), ResourceId(3)];
        let warm = replay(&p, &cfg).unwrap();
        assert!(warm.load.speed_index() <= cold.load.speed_index() + 1.0);
    }
}

#[cfg(test)]
mod h1_tests {
    use super::*;
    use h2push_webmodel::{PageBuilder, ResourceSpec};

    fn page() -> Page {
        let mut b = PageBuilder::new("h1-replay", "h1r.test", 50_000, 4_000);
        let third = b.origin("cdn.other.net", 1, false);
        b.resource(ResourceSpec::css(0, 15_000, 300, 0.4));
        b.resource(ResourceSpec::js(0, 20_000, 1_000, 15_000));
        for i in 0..8 {
            b.resource(ResourceSpec::image(0, 18_000, 10_000 + i * 4_000, i < 3, 1.0));
        }
        b.resource(ResourceSpec::js_async(third, 8_000, 30_000, 3_000));
        b.text_paint(8_000, 1.0);
        b.text_paint(35_000, 1.0);
        b.build()
    }

    fn h1_config() -> ReplayConfig {
        let mut cfg = ReplayConfig::testbed(Strategy::NoPush);
        cfg.protocol = Protocol::H1;
        cfg
    }

    #[test]
    fn h1_replay_completes() {
        let out = replay(&page(), &h1_config()).unwrap();
        assert!(out.load.finished());
        assert_eq!(out.load.pushed_count, 0, "no push over HTTP/1.1");
        assert_eq!(out.server_pushed_bytes, 0);
        // 12 resources requested (html + 11 subresources).
        assert_eq!(out.load.requests, 12);
    }

    #[test]
    fn h1_is_deterministic() {
        let a = replay(&page(), &h1_config()).unwrap();
        let b = replay(&page(), &h1_config()).unwrap();
        assert_eq!(a.load.plt(), b.load.plt());
        assert_eq!(a.load.speed_index(), b.load.speed_index());
    }

    #[test]
    fn h2_beats_h1_on_a_many_object_page() {
        // The paper's motivating context (§1–§3, Varvello et al.): H2's
        // multiplexing beats H1's six-connection pool on pages with many
        // small objects at a non-trivial RTT.
        let p = page();
        let h1 = replay(&p, &h1_config()).unwrap();
        let h2 = replay(&p, &ReplayConfig::testbed(Strategy::NoPush)).unwrap();
        assert!(
            h2.load.plt() < h1.load.plt(),
            "H2 {} ms should beat H1 {} ms",
            h2.load.plt(),
            h1.load.plt()
        );
    }

    #[test]
    fn h1_ignores_push_strategies() {
        let p = page();
        let mut cfg = h1_config();
        cfg.strategy = h2push_strategies::push_all(&p, &[]);
        let out = replay(&p, &cfg).unwrap();
        assert!(out.load.finished());
        assert_eq!(out.load.pushed_count, 0);
    }
}

#[cfg(test)]
mod warm_h1_tests {
    use super::*;
    use h2push_webmodel::{PageBuilder, ResourceSpec};

    #[test]
    fn h1_with_warm_cache_skips_cached_fetches() {
        let mut b = PageBuilder::new("h1-warm", "hw.test", 30_000, 3_000);
        b.resource(ResourceSpec::css(0, 10_000, 200, 0.5));
        b.resource(ResourceSpec::image(0, 15_000, 8_000, true, 1.0));
        b.text_paint(6_000, 1.0);
        let p = b.build();
        let mut cfg = ReplayConfig::testbed(Strategy::NoPush);
        cfg.protocol = Protocol::H1;
        cfg.warm_cache = vec![ResourceId(1), ResourceId(2)];
        let warm = replay(&p, &cfg).unwrap();
        assert!(warm.load.finished());
        // Only the document goes over the wire.
        assert_eq!(warm.load.requests, 1);
        let mut cold_cfg = ReplayConfig::testbed(Strategy::NoPush);
        cold_cfg.protocol = Protocol::H1;
        let cold = replay(&p, &cold_cfg).unwrap();
        assert!(warm.load.plt() < cold.load.plt());
    }
}
