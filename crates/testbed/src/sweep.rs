//! Grid-level sweeps: strategies × sites × reps in one scheduling unit.
//!
//! The paper's evaluation is a grid — every push strategy against every
//! recorded site, 31 repetitions each. Running that grid as independent
//! [`RunPlan`]s wastes work twice over: each plan re-derives the
//! page-level artifact its siblings already built, and each plan's
//! parallel fan-out drains before the next plan starts, so the worker
//! pool idles at every cell boundary. A [`SweepPlan`] fixes both: each
//! site's [`PreparedPage`] is built exactly once and shared (an `Arc`
//! clone) across every configuration touching that site, and the
//! flattened `strategies × sites × reps` grid is scheduled as a single
//! run of [`parallel_indexed`], merged back into per-cell reports in
//! deterministic (strategy-major, site, rep) order.
//!
//! Every cell is byte-identical to the same cell run through a plain
//! [`RunPlan`] with the same strategy, site, seed and mode — the CI
//! `sweep-smoke` job cross-checks one cell on every push.

use crate::chaos::strategy_label;
use crate::harness::Mode;
use crate::plan::{RunOutput, RunPlan, RunReport};
use crate::pool::parallel_indexed;
use crate::prepared::PreparedPage;
use crate::replay::{ReplayError, ReplayInputs};
use h2push_strategies::Strategy;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Why one rep of one cell failed (classification of
/// [`CellFailure::kind`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// The rep panicked; the payload message when it was a string. The
    /// panic was caught at the cell boundary — sibling cells and reps
    /// are unaffected.
    Panic(String),
    /// The netsim event-count watchdog fired after `events` events
    /// (livelock).
    Watchdog {
        /// Events processed when the watchdog tripped.
        events: u64,
    },
    /// The simulation quiesced before onload.
    Stalled,
    /// The sim-time deadline passed.
    Deadline,
}

impl FailureKind {
    /// Short stable label for reports ("panic", "watchdog", …).
    pub fn label(&self) -> &'static str {
        match self {
            FailureKind::Panic(_) => "panic",
            FailureKind::Watchdog { .. } => "watchdog",
            FailureKind::Stalled => "stalled",
            FailureKind::Deadline => "deadline",
        }
    }
}

impl From<ReplayError> for FailureKind {
    fn from(e: ReplayError) -> Self {
        match e {
            ReplayError::Stalled { .. } => FailureKind::Stalled,
            ReplayError::DeadlineExceeded => FailureKind::Deadline,
            ReplayError::Watchdog { events } => FailureKind::Watchdog { events },
        }
    }
}

/// One failed rep inside a cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// Which repetition failed (0-based).
    pub rep: usize,
    /// Why.
    pub kind: FailureKind,
}

/// One grid cell: a (strategy, site) pair with its completed reps.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Label of the strategy ([`strategy_label`]).
    pub strategy: String,
    /// Site name ([`h2push_webmodel::Page::name`]).
    pub site: String,
    /// The completed reps, exactly as a plain [`RunPlan`] would report.
    pub report: RunReport,
    /// Reps that did not complete, with their classified causes. A
    /// failed rep never aborts the grid: siblings in this cell and every
    /// other cell still run.
    pub failures: Vec<CellFailure>,
}

impl SweepCell {
    /// True when every rep of this cell completed.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Human-readable status: `"ok (31 reps)"` or
    /// `"2/31 failed (panic×1, watchdog×1)"`.
    pub fn status(&self) -> String {
        if self.failures.is_empty() {
            return format!("ok ({} reps)", self.report.len());
        }
        let total = self.report.len() + self.failures.len();
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for f in &self.failures {
            let label = f.kind.label();
            match counts.iter_mut().find(|(l, _)| *l == label) {
                Some((_, n)) => *n += 1,
                None => counts.push((label, 1)),
            }
        }
        let detail: Vec<String> = counts.iter().map(|(l, n)| format!("{l}\u{d7}{n}")).collect();
        format!("{}/{} failed ({})", self.failures.len(), total, detail.join(", "))
    }
}

/// All cells of a sweep, strategy-major then site order.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// The grid cells in deterministic order.
    pub cells: Vec<SweepCell>,
}

impl SweepReport {
    /// Find a cell by strategy label and site name.
    pub fn cell(&self, strategy: &str, site: &str) -> Option<&SweepCell> {
        self.cells.iter().find(|c| c.strategy == strategy && c.site == site)
    }

    /// Total completed reps across the grid.
    pub fn completed(&self) -> usize {
        self.cells.iter().map(|c| c.report.len()).sum()
    }

    /// Total failed reps across the grid.
    pub fn failed(&self) -> usize {
        self.cells.iter().map(|c| c.failures.len()).sum()
    }

    /// True when no rep of any cell failed.
    pub fn is_complete(&self) -> bool {
        self.failed() == 0
    }

    /// Cells with at least one failed rep.
    pub fn failed_cells(&self) -> impl Iterator<Item = &SweepCell> {
        self.cells.iter().filter(|c| !c.is_clean())
    }

    /// One status line per cell — the partial-results view a sweep
    /// driver prints when [`SweepReport::is_complete`] is false.
    pub fn render_status(&self) -> String {
        let mut out = String::new();
        for c in &self.cells {
            out.push_str(&format!("{:<14} {:<16} {}\n", c.strategy, c.site, c.status()));
        }
        out
    }
}

/// A whole measurement grid, built once and executed with
/// [`SweepPlan::run`].
///
/// ```
/// use h2push_testbed::SweepPlan;
/// use h2push_strategies::Strategy;
/// # use h2push_webmodel::{PageBuilder, ResourceSpec};
/// # let mut b = PageBuilder::new("doc", "d.test", 30_000, 3_000);
/// # b.resource(ResourceSpec::css(0, 10_000, 300, 0.4));
/// # b.text_paint(8_000, 1.0);
/// # let page = b.build();
/// let report = SweepPlan::new()
///     .strategy(Strategy::NoPush)
///     .site(page)
///     .reps(3)
///     .seed(42)
///     .run();
/// assert_eq!(report.cells.len(), 1);
/// assert_eq!(report.completed(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct SweepPlan {
    strategies: Vec<Strategy>,
    sites: Vec<ReplayInputs>,
    reps: usize,
    seed: u64,
    mode: Mode,
    panic_cell: Option<usize>,
}

impl Default for SweepPlan {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepPlan {
    /// An empty grid: no strategies, no sites, 1 rep, seed 0, testbed
    /// mode.
    pub fn new() -> Self {
        SweepPlan {
            strategies: Vec::new(),
            sites: Vec::new(),
            reps: 1,
            seed: 0,
            mode: Mode::Testbed,
            panic_cell: None,
        }
    }

    /// Test support: make every rep of flat cell index `cell`
    /// (strategy-major) panic deliberately, to prove the isolation layer
    /// contains it. Not for measurement runs.
    #[doc(hidden)]
    pub fn inject_panic_in_cell(mut self, cell: usize) -> Self {
        self.panic_cell = Some(cell);
        self
    }

    /// Add one strategy column.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategies.push(strategy);
        self
    }

    /// Add several strategy columns.
    pub fn strategies(mut self, strategies: impl IntoIterator<Item = Strategy>) -> Self {
        self.strategies.extend(strategies);
        self
    }

    /// Add one site row. The page is recorded and its [`PreparedPage`]
    /// built here, exactly once — every cell of this row shares it.
    pub fn site(mut self, page: impl Into<ReplayInputs>) -> Self {
        self.sites.push(page.into().prepared());
        self
    }

    /// Add several site rows (each prepared once, as with
    /// [`SweepPlan::site`]).
    pub fn sites<I, P>(mut self, pages: I) -> Self
    where
        I: IntoIterator<Item = P>,
        P: Into<ReplayInputs>,
    {
        for p in pages {
            self = self.site(p);
        }
        self
    }

    /// Repetitions per cell (the paper uses 31, [`crate::PAPER_RUNS`]).
    pub fn reps(mut self, reps: usize) -> Self {
        self.reps = reps;
        self
    }

    /// Base seed; cell rep `r` replays under `seed + r`, independent of
    /// which cell it belongs to — the same per-rep jitter a plain
    /// [`RunPlan`] with this seed derives.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Testbed (deterministic) or Internet (stochastic) conditions.
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// The shared [`PreparedPage`] of site row `i` (for diagnostics, e.g.
    /// HPACK cache hit rates after a run).
    pub fn prepared_for(&self, i: usize) -> Option<&std::sync::Arc<PreparedPage>> {
        self.sites.get(i).and_then(|s| s.prepared_page())
    }

    /// Execute the flattened grid on the worker pool and merge the
    /// results back into per-cell reports in (strategy, site, rep) order.
    ///
    /// Every rep is isolated: a panic is caught at the rep boundary
    /// (before it can tear down the pool worker), classified together
    /// with watchdog/stall/deadline errors into [`CellFailure`] records
    /// on its cell, and the rest of the grid completes normally.
    pub fn run(&self) -> SweepReport {
        let plans: Vec<(String, String, RunPlan)> = self
            .strategies
            .iter()
            .flat_map(|s| {
                self.sites.iter().map(move |site| {
                    let plan = RunPlan::new(site)
                        .strategy(s.clone())
                        .mode(self.mode)
                        .reps(self.reps)
                        .seed(self.seed);
                    (strategy_label(s).to_string(), site.page.name.clone(), plan)
                })
            })
            .collect();
        let reps = self.reps.max(1);
        let panic_cell = self.panic_cell;
        // One flat fan-out: rep r of cell c is grid index c*reps + r, so
        // the pool never drains between cells and the merge is a chunked
        // walk in submission order. The catch_unwind sits *inside* the
        // work closure: the pool joins its workers with a panic check,
        // so an escaped panic would abort the whole grid.
        let outs: Vec<Result<RunOutput, FailureKind>> = if self.reps == 0 {
            Vec::new()
        } else {
            parallel_indexed(plans.len() * reps, |i| {
                let caught = catch_unwind(AssertUnwindSafe(|| {
                    if panic_cell == Some(i / reps) {
                        panic!("injected sweep-cell panic (cell {})", i / reps);
                    }
                    plans[i / reps].2.run_rep(i % reps)
                }));
                match caught {
                    Ok(Ok(out)) => Ok(out),
                    Ok(Err(e)) => Err(FailureKind::from(e)),
                    Err(payload) => Err(FailureKind::Panic(panic_message(payload.as_ref()))),
                }
            })
        };
        let mut outs = outs.into_iter();
        let cells = plans
            .iter()
            .map(|(strategy, site, _)| {
                let mut runs = Vec::new();
                let mut failures = Vec::new();
                for rep in 0..self.reps {
                    match outs.next() {
                        Some(Ok(out)) => runs.push(out),
                        Some(Err(kind)) => failures.push(CellFailure { rep, kind }),
                        None => {}
                    }
                }
                SweepCell {
                    strategy: strategy.clone(),
                    site: site.clone(),
                    report: RunReport { runs },
                    failures,
                }
            })
            .collect();
        SweepReport { cells }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2push_strategies::push_all;
    use h2push_webmodel::{Page, PageBuilder, ResourceSpec};

    fn site_page(seed: u64) -> Page {
        let mut b = PageBuilder::new(
            &format!("sweep-{seed}"),
            "sweep.test",
            40_000 + seed as usize * 1_000,
            4_000,
        );
        b.resource(ResourceSpec::css(0, 15_000, 300, 0.4));
        b.resource(ResourceSpec::js(0, 20_000, 1_000, 10_000));
        b.text_paint(8_000, 1.0);
        b.build()
    }

    #[test]
    fn grid_shape_and_order() {
        let p0 = site_page(0);
        let p1 = site_page(1);
        let strategies = vec![Strategy::NoPush, push_all(&p0, &[])];
        let report = SweepPlan::new().strategies(strategies).sites([p0, p1]).reps(2).seed(7).run();
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.completed(), 8);
        let labels: Vec<(&str, &str)> =
            report.cells.iter().map(|c| (c.strategy.as_str(), c.site.as_str())).collect();
        assert_eq!(
            labels,
            vec![
                ("no-push", "sweep-0"),
                ("no-push", "sweep-1"),
                ("push-list", "sweep-0"),
                ("push-list", "sweep-1"),
            ]
        );
    }

    #[test]
    fn cell_matches_plain_run_plan() {
        let p = site_page(3);
        let sweep =
            SweepPlan::new().strategy(Strategy::NoPush).site(p.clone()).reps(3).seed(11).run();
        let plain = RunPlan::new(&p).strategy(Strategy::NoPush).reps(3).seed(11).run();
        let cell = sweep.cell("no-push", "sweep-3").expect("cell exists");
        assert_eq!(cell.report.len(), plain.len());
        for (a, b) in cell.report.outcomes().zip(plain.outcomes()) {
            assert_eq!(a.load, b.load);
            assert_eq!(a.trace.order, b.trace.order);
            assert_eq!(a.net, b.net);
        }
    }

    #[test]
    fn prepared_page_is_shared_across_strategies() {
        let p = site_page(4);
        let plan = SweepPlan::new()
            .strategies(vec![Strategy::NoPush, push_all(&p, &[])])
            .site(p)
            .reps(2)
            .seed(5);
        let prepared = plan.prepared_for(0).expect("site is prepared").clone();
        let report = plan.run();
        assert_eq!(report.completed(), 4);
        let (hits, misses) = prepared.hpack_cache().stats();
        assert!(hits + misses > 0, "the shared cache saw traffic");
        assert!(hits > 0, "repetitions hit memoized blocks");
    }

    #[test]
    fn empty_grid_is_empty() {
        let report = SweepPlan::new().run();
        assert!(report.cells.is_empty());
        assert_eq!(report.completed(), 0);
    }

    #[test]
    fn a_panicking_cell_is_isolated_and_classified() {
        let p0 = site_page(5);
        let p1 = site_page(6);
        // Silence the default panic hook for the injected panics; restore
        // it afterwards so other tests report normally.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let report = SweepPlan::new()
            .strategy(Strategy::NoPush)
            .sites([p0, p1])
            .reps(2)
            .seed(3)
            .inject_panic_in_cell(0)
            .run();
        std::panic::set_hook(hook);

        assert_eq!(report.cells.len(), 2);
        let bad = &report.cells[0];
        let good = &report.cells[1];
        // The poisoned cell reports every rep as a classified panic…
        assert_eq!(bad.report.len(), 0);
        assert_eq!(bad.failures.len(), 2);
        assert_eq!(bad.failures[0].rep, 0);
        assert!(matches!(&bad.failures[0].kind, FailureKind::Panic(m) if m.contains("injected")));
        assert!(!bad.is_clean());
        assert!(bad.status().contains("2/2 failed"));
        assert!(bad.status().contains("panic"));
        // …while its sibling completes untouched.
        assert!(good.is_clean());
        assert_eq!(good.report.len(), 2);
        assert_eq!(report.completed(), 2);
        assert_eq!(report.failed(), 2);
        assert!(!report.is_complete());
        assert_eq!(report.failed_cells().count(), 1);
        assert!(report.render_status().contains("ok (2 reps)"));
    }

    #[test]
    fn clean_grids_report_complete() {
        let report =
            SweepPlan::new().strategy(Strategy::NoPush).site(site_page(7)).reps(2).seed(1).run();
        assert!(report.is_complete());
        assert_eq!(report.failed(), 0);
        assert_eq!(report.failed_cells().count(), 0);
        let cell = &report.cells[0];
        assert_eq!(cell.status(), "ok (2 reps)");
    }

    #[test]
    fn replay_errors_classify_without_aborting_the_grid() {
        // A one-event watchdog budget makes every rep of the first
        // strategy… actually of every cell fail with Watchdog; prove the
        // classification path by running a deadline-zero plan through the
        // sweep. Simplest deterministic failure: FailureKind::from.
        assert_eq!(
            FailureKind::from(ReplayError::Watchdog { events: 9 }),
            FailureKind::Watchdog { events: 9 }
        );
        assert_eq!(FailureKind::from(ReplayError::DeadlineExceeded), FailureKind::Deadline);
        assert_eq!(
            FailureKind::from(ReplayError::Stalled { at: h2push_netsim::SimTime::ZERO }),
            FailureKind::Stalled
        );
        assert_eq!(FailureKind::Watchdog { events: 9 }.label(), "watchdog");
        assert_eq!(FailureKind::Panic(String::new()).label(), "panic");
    }
}
