//! Grid-level sweeps: strategies × sites × reps in one scheduling unit,
//! crash-safe and memory-bounded.
//!
//! The paper's evaluation is a grid — every push strategy against every
//! recorded site, 31 repetitions each. Running that grid as independent
//! [`RunPlan`]s wastes work twice over: each plan re-derives the
//! page-level artifact its siblings already built, and each plan's
//! parallel fan-out drains before the next plan starts, so the worker
//! pool idles at every cell boundary. A [`SweepPlan`] fixes both: each
//! site's [`PreparedPage`] is built exactly once and shared (an `Arc`
//! clone) across every configuration touching that site, and the
//! flattened `strategies × sites × reps` grid is scheduled as a single
//! run of [`parallel_indexed`], merged back into per-cell reports in
//! deterministic (strategy-major, site, rep) order.
//!
//! Population-scale grids (10^5–10^6 cells, ROADMAP) add two demands the
//! flat fan-out cannot meet:
//!
//! * **Crash safety** — [`SweepPlan::checkpoint`] journals every
//!   completed cell to an append-only, checksummed file
//!   ([`crate::checkpoint::SweepJournal`]); [`SweepPlan::resume`] replays
//!   it, refuses a journal from a different grid, and reschedules only
//!   the remainder. Interrupted-then-resumed is byte-identical to
//!   uninterrupted (same [`SweepReport`], same cell order) because every
//!   rep is a pure function of `(inputs, strategy, mode, seed + rep)`
//!   and the journal encoding is lossless.
//! * **Bounded memory** — [`SweepPlan::streaming`] folds each cell's
//!   per-rep outputs into compact [`CellStats`] scalars and drops the
//!   [`RunOutput`]s; population percentiles come from the mergeable
//!   fixed-bin [`StreamingHist`] ([`SweepReport::population`]), whose
//!   integer bins make the streaming-mode percentiles match the
//!   retained-mode computation exactly.
//!
//! Failed reps never abort the grid. A panic is caught at the rep
//! boundary and — because the simulator is deterministic — retried
//! exactly once to classify it: failing again proves the panic is
//! deterministic ([`RetryClass::Deterministic`]); succeeding means it was
//! environmental and the rep counts as completed (recorded in
//! [`SweepCell::recovered`]). Watchdog, stall and deadline failures are
//! never retried — rerunning a deterministic simulation cannot change
//! them ([`RetryClass::NotRetried`]).
//!
//! Every cell is byte-identical to the same cell run through a plain
//! [`RunPlan`] with the same strategy, site, seed and mode — the CI
//! `sweep-smoke` job cross-checks one cell on every push.

use crate::chaos::{strategy_label, FaultProfile};
use crate::checkpoint::{self, GridIdentity, ResumeError, SweepJournal};
use crate::harness::Mode;
use crate::plan::{RunOutput, RunPlan, RunReport};
use crate::pool::{parallel_indexed, worker_threads};
use crate::prepared::PreparedPage;
use crate::replay::{ReplayError, ReplayInputs};
use h2push_metrics::{RunStats, StreamingHist};
use h2push_strategies::Strategy;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Why one rep of one cell failed (classification of
/// [`CellFailure::kind`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// The rep panicked; the payload message when it was a string. The
    /// panic was caught at the cell boundary — sibling cells and reps
    /// are unaffected.
    Panic(String),
    /// The netsim event-count watchdog fired after `events` events
    /// (livelock).
    Watchdog {
        /// Events processed when the watchdog tripped.
        events: u64,
    },
    /// The simulation quiesced before onload.
    Stalled,
    /// The sim-time deadline passed.
    Deadline,
}

impl FailureKind {
    /// Short stable label for reports ("panic", "watchdog", …).
    pub fn label(&self) -> &'static str {
        match self {
            FailureKind::Panic(_) => "panic",
            FailureKind::Watchdog { .. } => "watchdog",
            FailureKind::Stalled => "stalled",
            FailureKind::Deadline => "deadline",
        }
    }

    /// Whether the retry policy re-runs this failure once. Only panics
    /// qualify: the rep may have tripped over transient process state
    /// (allocator pressure, a poisoned thread-local), and one retry
    /// separates that from a deterministic bug. Watchdog/stall/deadline
    /// come out of the deterministic simulation itself — rerunning the
    /// same pure function cannot change them.
    pub fn retryable(&self) -> bool {
        matches!(self, FailureKind::Panic(_))
    }
}

impl From<ReplayError> for FailureKind {
    fn from(e: ReplayError) -> Self {
        match e {
            ReplayError::Stalled { .. } => FailureKind::Stalled,
            ReplayError::DeadlineExceeded => FailureKind::Deadline,
            ReplayError::Watchdog { events } => FailureKind::Watchdog { events },
        }
    }
}

/// What the retry policy concluded about a failed rep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryClass {
    /// The failure kind is never retried (watchdog/stall/deadline: the
    /// deterministic sim would reproduce it exactly).
    NotRetried,
    /// Retried once and failed again — the failure is deterministic, not
    /// environmental.
    Deterministic,
}

impl RetryClass {
    /// Short stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            RetryClass::NotRetried => "not-retried",
            RetryClass::Deterministic => "deterministic",
        }
    }
}

/// One failed rep inside a cell (after the retry policy ran).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// Which repetition failed (0-based).
    pub rep: usize,
    /// Why (the final attempt's failure).
    pub kind: FailureKind,
    /// Retries spent on this rep (0 or 1 under the current policy).
    pub retries: u32,
    /// What the retry policy concluded.
    pub class: RetryClass,
}

/// A rep that failed with a retryable error but completed on retry — the
/// failure was environmental, and the rep's output is in the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredRep {
    /// Which repetition recovered (0-based).
    pub rep: usize,
    /// Retries it took (1 under the current policy).
    pub retries: u32,
}

/// Compact per-cell aggregates, computed for every cell in both retained
/// and streaming mode. In streaming mode this is all that survives a
/// cell: per-rep metric scalars (16 bytes per rep) instead of full
/// [`RunOutput`]s with waterfalls and paint curves.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CellStats {
    /// Completed reps (including recovered ones).
    pub n: u32,
    /// Completed reps whose load never reached onload (no PLT/SpeedIndex
    /// folded for them).
    pub partial: u32,
    /// PLT in ms of every finished rep, in rep order.
    pub plt: Vec<f64>,
    /// SpeedIndex in ms of every finished rep, in rep order.
    pub speed_index: Vec<f64>,
    /// Total server-pushed body bytes across completed reps.
    pub pushed_bytes: u64,
}

impl CellStats {
    /// Fold the completed runs of one cell.
    pub fn of(runs: &[RunOutput]) -> CellStats {
        let mut s = CellStats { n: runs.len() as u32, ..CellStats::default() };
        for run in runs {
            let load = &run.outcome.load;
            if load.finished() {
                s.plt.push(load.plt());
                s.speed_index.push(load.speed_index());
            } else {
                s.partial += 1;
            }
            s.pushed_bytes += run.outcome.server_pushed_bytes;
        }
        s
    }

    /// Summary statistics of the cell's PLTs — `None` when every rep
    /// failed or was partial, so an all-failed cell cannot panic the
    /// reporter ([`RunStats::try_of`]).
    pub fn plt_stats(&self) -> Option<RunStats> {
        RunStats::try_of(&self.plt)
    }

    /// Summary statistics of the cell's SpeedIndexes (same contract).
    pub fn speed_index_stats(&self) -> Option<RunStats> {
        RunStats::try_of(&self.speed_index)
    }
}

/// One grid cell: a (strategy, site) pair with its completed reps.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Label of the strategy ([`strategy_label`]).
    pub strategy: String,
    /// Site name ([`h2push_webmodel::Page::name`]).
    pub site: String,
    /// The completed reps, exactly as a plain [`RunPlan`] would report.
    /// Empty in streaming mode (the outputs were folded into `stats` and
    /// dropped).
    pub report: RunReport,
    /// Compact aggregates of the completed reps (always populated).
    pub stats: CellStats,
    /// Reps that did not complete, with their classified causes and
    /// retry accounting. A failed rep never aborts the grid: siblings in
    /// this cell and every other cell still run.
    pub failures: Vec<CellFailure>,
    /// Reps that failed once but completed on retry (environmental
    /// failures — their outputs are in `report`/`stats`).
    pub recovered: Vec<RecoveredRep>,
}

impl SweepCell {
    /// True when every rep of this cell completed.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Human-readable status: `"ok (31 reps)"`, `"ok (31 reps, 1
    /// recovered)"` or `"2/31 failed (panic\u{d7}1, watchdog\u{d7}1)"`.
    pub fn status(&self) -> String {
        if self.failures.is_empty() {
            return if self.recovered.is_empty() {
                format!("ok ({} reps)", self.stats.n)
            } else {
                format!("ok ({} reps, {} recovered)", self.stats.n, self.recovered.len())
            };
        }
        let total = self.stats.n as usize + self.failures.len();
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for f in &self.failures {
            let label = f.kind.label();
            match counts.iter_mut().find(|(l, _)| *l == label) {
                Some((_, n)) => *n += 1,
                None => counts.push((label, 1)),
            }
        }
        let detail: Vec<String> = counts.iter().map(|(l, n)| format!("{l}\u{d7}{n}")).collect();
        format!("{}/{} failed ({})", self.failures.len(), total, detail.join(", "))
    }
}

/// Population-level distributions over every completed rep of the grid —
/// the "millions of users" statistics (percentiles, CDFs) the scenario
/// engine reports instead of per-cell means.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationStats {
    /// PLT distribution (ms) over all finished reps.
    pub plt: StreamingHist,
    /// SpeedIndex distribution (ms) over all finished reps.
    pub speed_index: StreamingHist,
}

/// All cells of a sweep, strategy-major then site order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepReport {
    /// The grid cells in deterministic order.
    pub cells: Vec<SweepCell>,
    /// Whether per-rep outputs were dropped after folding
    /// ([`SweepPlan::streaming`]).
    pub streaming: bool,
}

impl SweepReport {
    /// Find a cell by strategy label and site name.
    pub fn cell(&self, strategy: &str, site: &str) -> Option<&SweepCell> {
        self.cells.iter().find(|c| c.strategy == strategy && c.site == site)
    }

    /// Total completed reps across the grid.
    pub fn completed(&self) -> usize {
        self.cells.iter().map(|c| c.stats.n as usize).sum()
    }

    /// Total failed reps across the grid.
    pub fn failed(&self) -> usize {
        self.cells.iter().map(|c| c.failures.len()).sum()
    }

    /// Total reps that recovered on retry across the grid.
    pub fn recovered(&self) -> usize {
        self.cells.iter().map(|c| c.recovered.len()).sum()
    }

    /// True when no rep of any cell failed.
    pub fn is_complete(&self) -> bool {
        self.failed() == 0
    }

    /// Cells with at least one failed rep.
    pub fn failed_cells(&self) -> impl Iterator<Item = &SweepCell> {
        self.cells.iter().filter(|c| !c.is_clean())
    }

    /// Fold every cell's per-rep metrics into population-level
    /// histograms. Identical for a retained, streaming, or resumed run of
    /// the same grid: the histogram state is integer bin counts, so the
    /// fold is exact and independent of execution chunking.
    pub fn population(&self) -> PopulationStats {
        let mut plt = StreamingHist::millis_default();
        let mut speed_index = StreamingHist::millis_default();
        for c in &self.cells {
            for &v in &c.stats.plt {
                plt.record(v);
            }
            for &v in &c.stats.speed_index {
                speed_index.record(v);
            }
        }
        PopulationStats { plt, speed_index }
    }

    /// The lossless canonical encoding of every cell (the journal record
    /// format, concatenated in grid order). Two reports are byte-for-byte
    /// identical iff these bytes are equal — the equality the
    /// checkpoint/resume suite asserts.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for (i, c) in self.cells.iter().enumerate() {
            let rec = checkpoint::encode_cell(i as u32, c);
            out.extend_from_slice(&(rec.len() as u32).to_le_bytes());
            out.extend_from_slice(&rec);
        }
        out
    }

    /// One status line per cell — the partial-results view a sweep
    /// driver prints when [`SweepReport::is_complete`] is false.
    pub fn render_status(&self) -> String {
        let mut out = String::new();
        for c in &self.cells {
            out.push_str(&format!("{:<14} {:<16} {}\n", c.strategy, c.site, c.status()));
        }
        out
    }
}

/// One cell's raw execution outcome before it becomes a [`SweepCell`].
#[derive(Default)]
struct CellOutcome {
    runs: Vec<RunOutput>,
    failures: Vec<CellFailure>,
    recovered: Vec<RecoveredRep>,
}

/// One rep's outcome after the retry policy ran.
enum RepResult {
    Done { out: Box<RunOutput>, retries: u32 },
    Failed { kind: FailureKind, retries: u32, class: RetryClass },
}

/// A whole measurement grid, built once and executed with
/// [`SweepPlan::run`] (in-memory), [`SweepPlan::checkpoint`] (journaled)
/// or [`SweepPlan::resume`] (journaled, replaying completed cells).
///
/// ```
/// use h2push_testbed::SweepPlan;
/// use h2push_strategies::Strategy;
/// # use h2push_webmodel::{PageBuilder, ResourceSpec};
/// # let mut b = PageBuilder::new("doc", "d.test", 30_000, 3_000);
/// # b.resource(ResourceSpec::css(0, 10_000, 300, 0.4));
/// # b.text_paint(8_000, 1.0);
/// # let page = b.build();
/// let report = SweepPlan::new()
///     .strategy(Strategy::NoPush)
///     .site(page)
///     .reps(3)
///     .seed(42)
///     .run();
/// assert_eq!(report.cells.len(), 1);
/// assert_eq!(report.completed(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct SweepPlan {
    strategies: Vec<Strategy>,
    sites: Vec<ReplayInputs>,
    reps: usize,
    seed: u64,
    mode: Mode,
    faults: Option<FaultProfile>,
    streaming: bool,
    chunk: Option<usize>,
    watchdog: Option<u64>,
    panic_cell: Option<usize>,
    flaky_cell: Option<usize>,
    flaky_seen: Arc<Mutex<HashSet<(usize, usize)>>>,
    kill_after: Option<usize>,
    halt_after: Option<usize>,
}

impl Default for SweepPlan {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepPlan {
    /// An empty grid: no strategies, no sites, 1 rep, seed 0, testbed
    /// mode, retained aggregation.
    pub fn new() -> Self {
        SweepPlan {
            strategies: Vec::new(),
            sites: Vec::new(),
            reps: 1,
            seed: 0,
            mode: Mode::Testbed,
            faults: None,
            streaming: false,
            chunk: None,
            watchdog: None,
            panic_cell: None,
            flaky_cell: None,
            flaky_seen: Arc::new(Mutex::new(HashSet::new())),
            kill_after: None,
            halt_after: None,
        }
    }

    /// Test support: make every attempt of every rep of flat cell index
    /// `cell` (strategy-major) panic deliberately, to prove the isolation
    /// and retry-classification layers contain it. Not for measurement
    /// runs.
    #[doc(hidden)]
    pub fn inject_panic_in_cell(mut self, cell: usize) -> Self {
        self.panic_cell = Some(cell);
        self
    }

    /// Test support: make the *first* attempt of each rep of cell `cell`
    /// panic and every retry succeed — the environmental-failure shape
    /// the retry policy exists to recover.
    #[doc(hidden)]
    pub fn inject_flaky_in_cell(mut self, cell: usize) -> Self {
        self.flaky_cell = Some(cell);
        self
    }

    /// Test support: SIGKILL the whole process immediately after the
    /// `n`-th cell record reaches the journal — the CI `resume-smoke`
    /// crash. Only meaningful with [`SweepPlan::checkpoint`]/`resume`.
    #[doc(hidden)]
    pub fn kill_after_journaled(mut self, n: usize) -> Self {
        self.kill_after = Some(n);
        self
    }

    /// Test support: stop scheduling after the `n`-th cell record reaches
    /// the journal and return the partial report — an in-process stand-in
    /// for a kill at an arbitrary cell boundary (the kill-resume equality
    /// test sweeps this over every boundary).
    #[doc(hidden)]
    pub fn halt_after_journaled(mut self, n: usize) -> Self {
        self.halt_after = Some(n);
        self
    }

    /// Add one strategy column.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategies.push(strategy);
        self
    }

    /// Add several strategy columns.
    pub fn strategies(mut self, strategies: impl IntoIterator<Item = Strategy>) -> Self {
        self.strategies.extend(strategies);
        self
    }

    /// Add one site row. The page is recorded and its [`PreparedPage`]
    /// built here, exactly once — every cell of this row shares it.
    pub fn site(mut self, page: impl Into<ReplayInputs>) -> Self {
        self.sites.push(page.into().prepared());
        self
    }

    /// Add several site rows (each prepared once, as with
    /// [`SweepPlan::site`]).
    pub fn sites<I, P>(mut self, pages: I) -> Self
    where
        I: IntoIterator<Item = P>,
        P: Into<ReplayInputs>,
    {
        for p in pages {
            self = self.site(p);
        }
        self
    }

    /// Repetitions per cell (the paper uses 31, [`crate::PAPER_RUNS`]).
    pub fn reps(mut self, reps: usize) -> Self {
        self.reps = reps;
        self
    }

    /// Base seed; cell rep `r` replays under `seed + r`, independent of
    /// which cell it belongs to — the same per-rep jitter a plain
    /// [`RunPlan`] with this seed derives.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Testbed (deterministic) or Internet (stochastic) conditions.
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Layer a chaos [`FaultProfile`] onto every cell's derived per-rep
    /// configs (part of the grid identity: a journal written under one
    /// profile refuses to resume under another).
    pub fn faults(mut self, profile: FaultProfile) -> Self {
        self.faults = Some(profile);
        self
    }

    /// Drop per-rep outputs after folding them into [`CellStats`] and
    /// the population histograms: cells keep 16 bytes per rep instead of
    /// full waterfalls, so a 10^5-cell grid runs in bounded memory. The
    /// grid executes in bounded chunks, and [`SweepReport::population`]
    /// reports percentiles identical to the retained-mode computation.
    pub fn streaming(mut self) -> Self {
        self.streaming = true;
        self
    }

    /// Override the netsim event-watchdog budget of every rep (the
    /// [`crate::ReplayConfig::watchdog_events`] knob, mainly for tests
    /// that need a deterministic non-panic failure).
    pub fn watchdog_events(mut self, events: u64) -> Self {
        self.watchdog = Some(events);
        self
    }

    /// Cells per execution chunk in journaled/streaming runs (defaults
    /// to `max(2 × worker threads, 4)`). Smaller chunks journal more
    /// often (less work lost to a kill) but drain the pool more often.
    pub fn chunk_cells(mut self, cells: usize) -> Self {
        self.chunk = Some(cells.max(1));
        self
    }

    /// The shared [`PreparedPage`] of site row `i` (for diagnostics, e.g.
    /// HPACK cache hit rates after a run).
    pub fn prepared_for(&self, i: usize) -> Option<&std::sync::Arc<PreparedPage>> {
        self.sites.get(i).and_then(|s| s.prepared_page())
    }

    /// The identity a journal of this grid carries: an FNV-1a fingerprint
    /// over every input that shapes the results (strategy set, site set —
    /// names and full page content — reps, seed, mode, fault profile,
    /// aggregation mode), plus a one-line summary for error messages.
    pub fn identity(&self) -> GridIdentity {
        use std::fmt::Write as _;
        let mut desc = String::from("h2push-sweep-grid-v1\n");
        for s in &self.strategies {
            let _ = writeln!(desc, "strategy {s:?}");
        }
        for site in &self.sites {
            let page_fp = checkpoint::fnv1a(format!("{:?}", site.page).as_bytes());
            let _ = writeln!(desc, "site {} {page_fp:016x}", site.page.name);
        }
        let _ = writeln!(desc, "reps {} seed {} mode {:?}", self.reps, self.seed, self.mode);
        let _ = writeln!(desc, "faults {:?}", self.faults);
        let _ = writeln!(desc, "streaming {}", self.streaming);
        let hash = checkpoint::fnv1a(desc.as_bytes());
        let summary = format!(
            "{} strategies \u{d7} {} sites \u{d7} {} reps, seed {}, {:?} mode, faults {}, {} \
             aggregation, grid {hash:016x}",
            self.strategies.len(),
            self.sites.len(),
            self.reps,
            self.seed,
            self.mode,
            self.faults.as_ref().map(|f| f.name.as_str()).unwrap_or("none"),
            if self.streaming { "streaming" } else { "retained" },
        );
        GridIdentity { hash, summary }
    }

    /// Execute the flattened grid on the worker pool and merge the
    /// results back into per-cell reports in (strategy, site, rep) order.
    ///
    /// Every rep is isolated: a panic is caught at the rep boundary
    /// (before it can tear down the pool worker), run through the retry
    /// policy, classified together with watchdog/stall/deadline errors
    /// into [`CellFailure`] records on its cell, and the rest of the grid
    /// completes normally.
    pub fn run(&self) -> SweepReport {
        self.execute(None).expect("in-memory sweeps perform no I/O")
    }

    /// Run the grid with a fresh crash-safe journal at `path` (truncating
    /// any previous journal there). Every completed cell is appended and
    /// fsynced before the grid moves on, so a kill costs at most the
    /// cells in flight.
    pub fn checkpoint(&self, path: impl AsRef<Path>) -> Result<SweepReport, ResumeError> {
        let journal = SweepJournal::create(path.as_ref(), &self.identity())?;
        self.execute(Some((journal, Vec::new())))
    }

    /// Resume a journaled sweep: replay the journal at `path`, skip the
    /// cells it already holds, execute only the remainder (appending them
    /// to the same journal), and return the full report — byte-identical
    /// to an uninterrupted run of the same grid. Refuses a journal whose
    /// grid identity does not match this plan
    /// ([`ResumeError::IdentityMismatch`]); tolerates a torn final record
    /// and checksum-corrupt records (those cells re-run). A missing file
    /// starts a fresh checkpointed run.
    pub fn resume(&self, path: impl AsRef<Path>) -> Result<SweepReport, ResumeError> {
        let path = path.as_ref();
        if !path.exists() {
            return self.checkpoint(path);
        }
        let (journal, records, _scan) = SweepJournal::load(path, &self.identity())?;
        let done: Vec<(u32, SweepCell)> =
            records.iter().filter_map(|r| checkpoint::decode_cell(r)).collect();
        self.execute(Some((journal, done)))
    }

    fn build_plans(&self) -> Vec<(String, String, RunPlan)> {
        self.strategies
            .iter()
            .flat_map(|s| {
                self.sites.iter().map(move |site| {
                    let mut plan = RunPlan::new(site)
                        .strategy(s.clone())
                        .mode(self.mode)
                        .reps(self.reps)
                        .seed(self.seed);
                    if let Some(profile) = &self.faults {
                        plan = plan.faults(profile.clone());
                    }
                    if let Some(events) = self.watchdog {
                        plan = plan.watchdog_events(events);
                    }
                    (strategy_label(s).to_string(), site.page.name.clone(), plan)
                })
            })
            .collect()
    }

    /// One rep attempt, isolated behind `catch_unwind` (the pool joins
    /// its workers with a panic check, so an escaped panic would abort
    /// the whole grid).
    fn attempt(
        &self,
        plans: &[(String, String, RunPlan)],
        cell: usize,
        rep: usize,
    ) -> Result<RunOutput, FailureKind> {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            if self.panic_cell == Some(cell) {
                panic!("injected sweep-cell panic (cell {cell})");
            }
            if self.flaky_cell == Some(cell)
                && self.flaky_seen.lock().expect("flaky set").insert((cell, rep))
            {
                panic!("injected flaky panic (cell {cell} rep {rep})");
            }
            plans[cell].2.run_rep(rep)
        }));
        match caught {
            Ok(Ok(out)) => Ok(out),
            Ok(Err(e)) => Err(FailureKind::from(e)),
            Err(payload) => Err(FailureKind::Panic(panic_message(payload.as_ref()))),
        }
    }

    /// The retry policy: panics get exactly one retry to classify
    /// deterministic-vs-environmental; simulation failures get none.
    fn run_rep_with_retry(
        &self,
        plans: &[(String, String, RunPlan)],
        cell: usize,
        rep: usize,
    ) -> RepResult {
        match self.attempt(plans, cell, rep) {
            Ok(out) => RepResult::Done { out: Box::new(out), retries: 0 },
            Err(kind) if !kind.retryable() => {
                RepResult::Failed { kind, retries: 0, class: RetryClass::NotRetried }
            }
            Err(_) => match self.attempt(plans, cell, rep) {
                Ok(out) => RepResult::Done { out: Box::new(out), retries: 1 },
                Err(kind) => {
                    RepResult::Failed { kind, retries: 1, class: RetryClass::Deterministic }
                }
            },
        }
    }

    /// Execute the cells at `idxs` as one flat (cell × rep) fan-out and
    /// fold the results back per cell.
    fn exec_cells(&self, plans: &[(String, String, RunPlan)], idxs: &[usize]) -> Vec<CellOutcome> {
        if self.reps == 0 {
            return idxs.iter().map(|_| CellOutcome::default()).collect();
        }
        let reps = self.reps;
        let results: Vec<RepResult> = parallel_indexed(idxs.len() * reps, |i| {
            self.run_rep_with_retry(plans, idxs[i / reps], i % reps)
        });
        let mut results = results.into_iter();
        idxs.iter()
            .map(|_| {
                let mut cell = CellOutcome::default();
                for rep in 0..reps {
                    match results.next().expect("one result per rep") {
                        RepResult::Done { out, retries } => {
                            if retries > 0 {
                                cell.recovered.push(RecoveredRep { rep, retries });
                            }
                            cell.runs.push(*out);
                        }
                        RepResult::Failed { kind, retries, class } => {
                            cell.failures.push(CellFailure { rep, kind, retries, class });
                        }
                    }
                }
                cell
            })
            .collect()
    }

    fn make_cell(&self, strategy: &str, site: &str, outcome: CellOutcome) -> SweepCell {
        let stats = CellStats::of(&outcome.runs);
        let runs = if self.streaming { Vec::new() } else { outcome.runs };
        SweepCell {
            strategy: strategy.to_string(),
            site: site.to_string(),
            report: RunReport { runs },
            stats,
            failures: outcome.failures,
            recovered: outcome.recovered,
        }
    }

    /// The executor behind `run`/`checkpoint`/`resume`. `journal` carries
    /// the open journal plus the cells already replayed from it.
    ///
    /// Without a journal and without streaming, the whole grid is one
    /// flat fan-out (the pool never drains between cells). Journaled or
    /// streaming runs execute in bounded chunks: each chunk's cells are
    /// journaled/folded as soon as the chunk completes, which bounds both
    /// the work a kill can lose and the outputs held in memory. Chunking
    /// cannot change results — every rep is a pure function of its cell
    /// and rep index.
    fn execute(
        &self,
        journal: Option<(SweepJournal, Vec<(u32, SweepCell)>)>,
    ) -> Result<SweepReport, ResumeError> {
        let plans = self.build_plans();
        let n = plans.len();
        let mut cells: Vec<Option<SweepCell>> = (0..n).map(|_| None).collect();
        let (mut journal, done) = match journal {
            Some((j, done)) => (Some(j), done),
            None => (None, Vec::new()),
        };
        // Last record wins: a cell journaled twice (corruption re-run)
        // replays to its most recent contents.
        for (idx, cell) in done {
            if let Some(slot) = cells.get_mut(idx as usize) {
                *slot = Some(cell);
            }
        }
        let missing: Vec<usize> = (0..n).filter(|&i| cells[i].is_none()).collect();
        let chunk = if self.streaming || journal.is_some() {
            self.chunk.unwrap_or_else(|| (worker_threads() * 2).max(4))
        } else {
            missing.len().max(1)
        };
        let mut journaled = 0usize;
        'grid: for batch in missing.chunks(chunk) {
            let outcomes = self.exec_cells(&plans, batch);
            for (&idx, outcome) in batch.iter().zip(outcomes) {
                let (strategy, site, _) = &plans[idx];
                let cell = self.make_cell(strategy, site, outcome);
                if let Some(j) = journal.as_mut() {
                    j.append(&checkpoint::encode_cell(idx as u32, &cell))?;
                    journaled += 1;
                    if self.kill_after == Some(journaled) {
                        kill_self();
                    }
                }
                cells[idx] = Some(cell);
                if journal.is_some() && self.halt_after == Some(journaled) {
                    break 'grid;
                }
            }
        }
        // A halted (test-hook) run returns only the journaled prefix; a
        // completed run always has every slot filled.
        Ok(SweepReport { cells: cells.into_iter().flatten().collect(), streaming: self.streaming })
    }
}

/// SIGKILL the current process — no destructors, no flushes, exactly the
/// crash the journal must survive. Test support for the resume suite.
fn kill_self() -> ! {
    let _ =
        std::process::Command::new("kill").args(["-9", &std::process::id().to_string()]).status();
    // If no `kill` binary exists, die ungracefully anyway.
    std::process::abort();
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2push_strategies::push_all;
    use h2push_webmodel::{Page, PageBuilder, ResourceSpec};

    fn site_page(seed: u64) -> Page {
        let mut b = PageBuilder::new(
            &format!("sweep-{seed}"),
            "sweep.test",
            40_000 + seed as usize * 1_000,
            4_000,
        );
        b.resource(ResourceSpec::css(0, 15_000, 300, 0.4));
        b.resource(ResourceSpec::js(0, 20_000, 1_000, 10_000));
        b.text_paint(8_000, 1.0);
        b.build()
    }

    #[test]
    fn grid_shape_and_order() {
        let p0 = site_page(0);
        let p1 = site_page(1);
        let strategies = vec![Strategy::NoPush, push_all(&p0, &[])];
        let report = SweepPlan::new().strategies(strategies).sites([p0, p1]).reps(2).seed(7).run();
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.completed(), 8);
        let labels: Vec<(&str, &str)> =
            report.cells.iter().map(|c| (c.strategy.as_str(), c.site.as_str())).collect();
        assert_eq!(
            labels,
            vec![
                ("no-push", "sweep-0"),
                ("no-push", "sweep-1"),
                ("push-list", "sweep-0"),
                ("push-list", "sweep-1"),
            ]
        );
    }

    #[test]
    fn cell_matches_plain_run_plan() {
        let p = site_page(3);
        let sweep =
            SweepPlan::new().strategy(Strategy::NoPush).site(p.clone()).reps(3).seed(11).run();
        let plain = RunPlan::new(&p).strategy(Strategy::NoPush).reps(3).seed(11).run();
        let cell = sweep.cell("no-push", "sweep-3").expect("cell exists");
        assert_eq!(cell.report.len(), plain.len());
        for (a, b) in cell.report.outcomes().zip(plain.outcomes()) {
            assert_eq!(a.load, b.load);
            assert_eq!(a.trace.order, b.trace.order);
            assert_eq!(a.net, b.net);
        }
        // The compact stats agree with the retained outputs.
        assert_eq!(cell.stats.n, 3);
        assert_eq!(cell.stats.partial, 0);
        let plts: Vec<f64> = plain.outcomes().map(|o| o.load.plt()).collect();
        assert_eq!(cell.stats.plt, plts);
        let stats = cell.stats.plt_stats().expect("3 finished reps");
        assert_eq!(stats.n, 3);
    }

    #[test]
    fn prepared_page_is_shared_across_strategies() {
        let p = site_page(4);
        let plan = SweepPlan::new()
            .strategies(vec![Strategy::NoPush, push_all(&p, &[])])
            .site(p)
            .reps(2)
            .seed(5);
        let prepared = plan.prepared_for(0).expect("site is prepared").clone();
        let report = plan.run();
        assert_eq!(report.completed(), 4);
        let (hits, misses) = prepared.hpack_cache().stats();
        assert!(hits + misses > 0, "the shared cache saw traffic");
        assert!(hits > 0, "repetitions hit memoized blocks");
    }

    #[test]
    fn empty_grid_is_empty() {
        let report = SweepPlan::new().run();
        assert!(report.cells.is_empty());
        assert_eq!(report.completed(), 0);
    }

    #[test]
    fn a_panicking_cell_is_isolated_and_classified_deterministic() {
        let p0 = site_page(5);
        let p1 = site_page(6);
        // Silence the default panic hook for the injected panics; restore
        // it afterwards so other tests report normally.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let report = SweepPlan::new()
            .strategy(Strategy::NoPush)
            .sites([p0, p1])
            .reps(2)
            .seed(3)
            .inject_panic_in_cell(0)
            .run();
        std::panic::set_hook(hook);

        assert_eq!(report.cells.len(), 2);
        let bad = &report.cells[0];
        let good = &report.cells[1];
        // The poisoned cell reports every rep as a classified panic that
        // was retried once and reproduced — deterministic.
        assert_eq!(bad.report.len(), 0);
        assert_eq!(bad.failures.len(), 2);
        assert_eq!(bad.failures[0].rep, 0);
        assert!(matches!(&bad.failures[0].kind, FailureKind::Panic(m) if m.contains("injected")));
        assert_eq!(bad.failures[0].retries, 1);
        assert_eq!(bad.failures[0].class, RetryClass::Deterministic);
        assert!(bad.recovered.is_empty());
        assert!(!bad.is_clean());
        assert!(bad.status().contains("2/2 failed"));
        assert!(bad.status().contains("panic"));
        // …while its sibling completes untouched.
        assert!(good.is_clean());
        assert_eq!(good.report.len(), 2);
        assert_eq!(report.completed(), 2);
        assert_eq!(report.failed(), 2);
        assert!(!report.is_complete());
        assert_eq!(report.failed_cells().count(), 1);
        assert!(report.render_status().contains("ok (2 reps)"));
    }

    #[test]
    fn a_flaky_cell_recovers_on_retry() {
        let p0 = site_page(8);
        let p1 = site_page(9);
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let flaky = SweepPlan::new()
            .strategy(Strategy::NoPush)
            .sites([p0.clone(), p1.clone()])
            .reps(2)
            .seed(3)
            .inject_flaky_in_cell(0)
            .run();
        std::panic::set_hook(hook);

        // Every rep completed — the first attempts' panics were
        // environmental and the retries brought them back.
        assert!(flaky.is_complete());
        assert_eq!(flaky.completed(), 4);
        assert_eq!(flaky.recovered(), 2);
        let cell = &flaky.cells[0];
        assert_eq!(
            cell.recovered,
            vec![RecoveredRep { rep: 0, retries: 1 }, RecoveredRep { rep: 1, retries: 1 },]
        );
        assert!(cell.status().contains("2 recovered"));
        // Recovered outputs are byte-identical to an undisturbed run.
        let clean =
            SweepPlan::new().strategy(Strategy::NoPush).sites([p0, p1]).reps(2).seed(3).run();
        for (a, b) in cell.report.outcomes().zip(clean.cells[0].report.outcomes()) {
            assert_eq!(a.load, b.load);
            assert_eq!(a.net, b.net);
        }
    }

    #[test]
    fn watchdog_failures_are_never_retried() {
        let report = SweepPlan::new()
            .strategy(Strategy::NoPush)
            .site(site_page(10))
            .reps(2)
            .seed(1)
            .watchdog_events(10)
            .run();
        assert_eq!(report.failed(), 2);
        let cell = &report.cells[0];
        for f in &cell.failures {
            assert!(matches!(f.kind, FailureKind::Watchdog { .. }));
            assert_eq!(f.retries, 0, "deterministic sim failures get no retry");
            assert_eq!(f.class, RetryClass::NotRetried);
        }
        assert_eq!(FailureKind::Watchdog { events: 9 }.label(), "watchdog");
        assert!(!FailureKind::Watchdog { events: 9 }.retryable());
        assert!(FailureKind::Panic(String::new()).retryable());
    }

    #[test]
    fn clean_grids_report_complete() {
        let report =
            SweepPlan::new().strategy(Strategy::NoPush).site(site_page(7)).reps(2).seed(1).run();
        assert!(report.is_complete());
        assert_eq!(report.failed(), 0);
        assert_eq!(report.failed_cells().count(), 0);
        let cell = &report.cells[0];
        assert_eq!(cell.status(), "ok (2 reps)");
    }

    #[test]
    fn replay_errors_classify_without_aborting_the_grid() {
        assert_eq!(
            FailureKind::from(ReplayError::Watchdog { events: 9 }),
            FailureKind::Watchdog { events: 9 }
        );
        assert_eq!(FailureKind::from(ReplayError::DeadlineExceeded), FailureKind::Deadline);
        assert_eq!(
            FailureKind::from(ReplayError::Stalled { at: h2push_netsim::SimTime::ZERO }),
            FailureKind::Stalled
        );
        assert_eq!(FailureKind::Watchdog { events: 9 }.label(), "watchdog");
        assert_eq!(FailureKind::Panic(String::new()).label(), "panic");
        assert_eq!(RetryClass::NotRetried.label(), "not-retried");
        assert_eq!(RetryClass::Deterministic.label(), "deterministic");
    }

    #[test]
    fn streaming_mode_drops_outputs_but_keeps_identical_statistics() {
        let p0 = site_page(20);
        let p1 = site_page(21);
        let strategies = vec![Strategy::NoPush, push_all(&p0, &[])];
        let base = SweepPlan::new().strategies(strategies).sites([p0, p1]).reps(3).seed(13);
        let retained = base.clone().run();
        let streamed = base.streaming().run();

        assert!(streamed.streaming);
        assert_eq!(streamed.cells.len(), retained.cells.len());
        for (s, r) in streamed.cells.iter().zip(&retained.cells) {
            assert!(s.report.is_empty(), "streaming cells drop per-rep outputs");
            assert!(!r.report.is_empty());
            assert_eq!(s.stats, r.stats, "folded scalars are identical");
        }
        // Population percentiles are bit-identical between the modes.
        let sp = streamed.population();
        let rp = retained.population();
        assert_eq!(sp, rp);
        assert_eq!(sp.plt.count(), 12);
        assert!(sp.plt.p50().is_some());
        assert!(sp.plt.p99().unwrap() >= sp.plt.p50().unwrap());
        assert!(!sp.plt.cdf().is_empty());
    }

    #[test]
    fn grid_identity_is_sensitive_to_every_knob() {
        let p = site_page(30);
        let base = SweepPlan::new().strategy(Strategy::NoPush).site(p.clone()).reps(3).seed(1);
        let id = base.identity();
        assert_eq!(id, base.identity(), "identity is stable");
        assert_ne!(id.hash, base.clone().reps(4).identity().hash);
        assert_ne!(id.hash, base.clone().seed(2).identity().hash);
        assert_ne!(id.hash, base.clone().mode(Mode::Internet).identity().hash);
        assert_ne!(id.hash, base.clone().streaming().identity().hash);
        assert_ne!(id.hash, base.clone().strategy(push_all(&p, &[])).identity().hash);
        assert_ne!(id.hash, base.clone().site(site_page(31)).identity().hash);
        assert_ne!(id.hash, base.clone().faults(FaultProfile::bernoulli(0.02)).identity().hash);
        assert!(id.summary.contains("1 strategies"));
    }

    #[test]
    fn all_failed_cells_report_no_stats_instead_of_panicking() {
        let report = SweepPlan::new()
            .strategy(Strategy::NoPush)
            .site(site_page(40))
            .reps(2)
            .seed(1)
            .watchdog_events(10)
            .run();
        let cell = &report.cells[0];
        assert_eq!(cell.stats.n, 0);
        assert_eq!(cell.stats.plt_stats(), None, "RunStats::try_of at the boundary");
        assert_eq!(cell.stats.speed_index_stats(), None);
        let pop = report.population();
        assert!(pop.plt.is_empty());
        assert_eq!(pop.plt.p50(), None);
    }
}
