//! Write a traced run's waterfall to disk (`results/` by convention).
//!
//! The trace crate renders from primitives only; this module binds the
//! render to the page (resource id → URL path) and the strategy (via the
//! exhaustive [`strategy_label`]) and handles filenames. Both exports are
//! deterministic, so re-running the same seed rewrites identical files.

use crate::chaos::strategy_label;
use h2push_strategies::Strategy;
use h2push_trace::{Timeline, WaterfallMeta};
use h2push_webmodel::Page;
use std::fs;
use std::path::{Path, PathBuf};

/// `"w1-wikipedia"` → `"w1-wikipedia"`, anything shell-hostile → `_`.
fn slug(s: &str) -> String {
    s.chars().map(|c| if c.is_ascii_alphanumeric() || c == '-' { c } else { '_' }).collect()
}

/// Render `timeline` as both text and JSON and write
/// `waterfall_<site>_<strategy>.{txt,json}` under `dir` (created if
/// missing). Returns the two paths written.
pub fn write_waterfall(
    dir: impl AsRef<Path>,
    page: &Page,
    strategy: &Strategy,
    seed: u64,
    timeline: &Timeline,
) -> std::io::Result<(PathBuf, PathBuf)> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let label = strategy_label(strategy);
    let meta = WaterfallMeta { site: &page.name, strategy: label, seed };
    let names = |id: usize| page.resources.get(id).map(|r| r.path.clone());
    let stem = format!("waterfall_{}_{}", slug(&page.name), slug(label));
    let txt_path = dir.join(format!("{stem}.txt"));
    let json_path = dir.join(format!("{stem}.json"));
    fs::write(&txt_path, timeline.waterfall_text(&meta, &names))?;
    fs::write(&json_path, timeline.waterfall_json(&meta, &names))?;
    Ok((txt_path, json_path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::RunPlan;
    use h2push_webmodel::{PageBuilder, ResourceSpec};

    #[test]
    fn writes_both_files_with_page_names() {
        let mut b = PageBuilder::new("wf test", "wf.test", 30_000, 3_000);
        b.resource(ResourceSpec::css(0, 10_000, 300, 0.4));
        b.text_paint(8_000, 1.0);
        let page = b.build();
        let out = RunPlan::new(&page).traced().run_one().unwrap();
        let tl = out.timeline.expect("traced");
        let dir = std::env::temp_dir().join("h2push-wf-test");
        let (txt, json) = write_waterfall(&dir, &page, &Strategy::NoPush, 0, &tl).unwrap();
        let txt_s = fs::read_to_string(&txt).unwrap();
        let json_s = fs::read_to_string(&json).unwrap();
        assert!(txt.file_name().unwrap().to_str().unwrap().contains("wf_test_no-push"));
        assert!(txt_s.contains("site=wf test strategy=no-push"));
        assert!(json_s.contains("\"strategy\": \"no-push\""));
        assert!(json_s.contains("\"onload_us\": "));
        let _ = fs::remove_dir_all(&dir);
    }
}
