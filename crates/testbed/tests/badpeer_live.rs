//! The badpeer attack catalogue over real TCP.
//!
//! The sans-IO contract promises that the harness owns nothing the
//! protocol outcome depends on — `badpeer_sansio.rs` proved that for
//! in-memory `feed_bytes`. This suite closes the loop over an actual
//! socket: every scripted attack replays its recorded wire bytes against
//! a [`LiveServer`] (or, for the client-victim kind, from a malicious
//! TCP listener against a real client `Connection`) and must die with —
//! or survive to — the *same typed [`ConnError`]* the canonical
//! in-memory suite reports, while the supervision layer records the
//! close in [`LiveServerStats::close_log`].
//!
//! It also exercises the two defenses only a transport can witness:
//! a slow reader pinned under the output-queue bound until the
//! write-stall deadline retires it, and a server that keeps completing
//! well-behaved loads while the full catalogue fires at it.
#![cfg(unix)]

use h2push_browser::BrowserConfig;
use h2push_h2proto::{
    ConnError, ConnLimits, Connection, DefaultScheduler, Event, Frame, PrioritySpec, Settings,
};
use h2push_strategies::Strategy;
use h2push_testbed::{
    attack_page, benign_request, load_page, run_suite, AttackKind, AttackOutcome, AttackScript,
    CloseReason, LiveLimits, LiveServer, LiveServerStats, Victim,
};
use h2push_webmodel::{PageBuilder, ResourceId};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The benign splice-in every server-victim script rides on, as raw wire
/// bytes: preface, SETTINGS and one GET from a real client `Connection` —
/// byte-identical to what the canonical harness feeds first.
fn benign_splice() -> Vec<u8> {
    let mut cli = Connection::client(Settings::default());
    let mut sched = DefaultScheduler::new();
    cli.request(&benign_request(), Some(PrioritySpec::default()));
    let mut v = Vec::new();
    loop {
        let out = cli.produce(usize::MAX, &mut sched);
        if out.is_empty() {
            break;
        }
        v.extend_from_slice(&out);
    }
    v
}

/// Write that tolerates the victim hanging up mid-stream (a server that
/// already died of the attack closes the socket; the remaining attack
/// bytes have nowhere to go and that is fine). Returns false once the
/// peer is gone.
fn write_lossy(s: &mut TcpStream, bytes: &[u8]) -> bool {
    s.write_all(bytes).is_ok()
}

/// Read until EOF (or a reset, which equally proves the peer retired the
/// connection), bounded so a wedged server fails the test instead of
/// hanging it.
fn read_to_eof(s: &mut TcpStream, label: &str) {
    s.set_read_timeout(Some(Duration::from_millis(100))).unwrap();
    let mut buf = [0u8; 16 * 1024];
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        match s.read(&mut buf) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
        assert!(Instant::now() < deadline, "{label}: victim never closed the connection");
    }
}

/// One server-victim attack over a real socket: fresh [`LiveServer`] on
/// the canonical attack page with strict limits, benign splice then the
/// compiled chunks, half-close, drain. Returns the run's stats.
fn attack_live_server(script: &AttackScript) -> LiveServerStats {
    let page = Arc::new(attack_page());
    let mut server =
        LiveServer::bind("127.0.0.1:0", page, Strategy::PushList { order: vec![ResourceId(1)] })
            .expect("bind loopback");
    let mut limits = LiveLimits::new();
    limits.conn = ConnLimits::strict();
    limits.drain_deadline = Duration::from_secs(5);
    server.set_limits(limits);
    server.set_deadline(Duration::from_secs(30));
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run());

    let mut s = TcpStream::connect(addr).expect("connect");
    let _ = s.set_nodelay(true);
    if write_lossy(&mut s, &benign_splice()) {
        for chunk in script.compile() {
            if !write_lossy(&mut s, &chunk) {
                break;
            }
        }
    }
    let _ = s.shutdown(Shutdown::Write);
    read_to_eof(&mut s, script.kind.label());
    drop(s);

    handle.stop();
    server_thread.join().expect("server thread").expect("server run")
}

#[test]
fn server_victim_attacks_reach_same_typed_errors_over_tcp() {
    let canonical = run_suite(42, ConnLimits::strict());
    let server_victims: Vec<&AttackOutcome> =
        canonical.iter().filter(|o| o.victim == Victim::Server).collect();
    assert_eq!(server_victims.len(), 10, "catalogue shape changed");

    for outcome in server_victims {
        let script = AttackScript::new(outcome.kind, outcome.seed);
        let stats = attack_live_server(&script);
        assert_eq!(
            stats.close_log.len(),
            1,
            "{}: expected exactly one retired connection, got {:?}",
            outcome.kind.label(),
            stats.close_log,
        );
        let close = &stats.close_log[0];
        assert_eq!(
            close.error,
            outcome.fatal,
            "{}: typed error over TCP diverged from the sans-IO suite",
            outcome.kind.label(),
        );
        if outcome.fatal.is_some() {
            assert_eq!(
                close.reason,
                CloseReason::ProtocolError,
                "{}: fatal attack not closed as a protocol error",
                outcome.kind.label(),
            );
            assert_eq!(stats.closed.protocol_error, 1);
        } else {
            // Absorbed attacks end with our half-close: a clean EOF.
            assert_eq!(
                close.reason,
                CloseReason::Clean,
                "{}: absorbed attack should close clean",
                outcome.kind.label(),
            );
            assert_eq!(stats.closed.clean, 1);
        }
    }
}

#[test]
fn client_victim_attack_reaches_same_typed_error_over_tcp() {
    let canonical = run_suite(42, ConnLimits::strict());
    let outcome = canonical
        .iter()
        .find(|o| o.kind == AttackKind::PushAfterGoaway)
        .expect("client-victim kind in suite");
    assert_eq!(outcome.victim, Victim::Client);
    let chunks = AttackScript::new(outcome.kind, outcome.seed).compile();

    // The malicious server: one accepted connection, drain the client's
    // opening burst first (dropping unread received bytes would RST the
    // socket and could destroy our own attack bytes in flight), then the
    // scripted chunks, then half-close and wait for the client to go.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind attacker");
    let addr = listener.local_addr().unwrap();
    let attacker = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().expect("accept victim");
        s.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        let mut buf = [0u8; 16 * 1024];
        let mut seen = 0usize;
        let start = Instant::now();
        while start.elapsed() < Duration::from_secs(5) {
            match s.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => seen += n,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if seen > 0 {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        for chunk in &chunks {
            if s.write_all(chunk).is_err() {
                break;
            }
        }
        let _ = s.shutdown(Shutdown::Write);
        let start = Instant::now();
        while start.elapsed() < Duration::from_secs(10) {
            match s.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
    });

    // The victim: a real client `Connection` with strict limits, driven
    // over the socket exactly as the sans-IO path drives feed_bytes.
    let mut s = TcpStream::connect(addr).expect("connect attacker");
    let mut cli = Connection::client(Settings::default());
    cli.set_limits(ConnLimits::strict());
    let mut sched = DefaultScheduler::new();
    cli.request(&benign_request(), Some(PrioritySpec::default()));
    loop {
        let out = cli.produce(usize::MAX, &mut sched);
        if out.is_empty() {
            break;
        }
        if !write_lossy(&mut s, &out) {
            break;
        }
    }

    s.set_read_timeout(Some(Duration::from_millis(100))).unwrap();
    let mut fatal: Option<ConnError> = None;
    let mut buf = [0u8; 16 * 1024];
    let deadline = Instant::now() + Duration::from_secs(15);
    'recv: while Instant::now() < deadline {
        match s.read(&mut buf) {
            Ok(0) => break 'recv,
            Ok(n) => {
                for ev in cli.feed_bytes(&buf[..n]) {
                    if let Event::ConnectionError { error } = ev {
                        fatal.get_or_insert(error);
                    }
                }
                loop {
                    let out = cli.produce(usize::MAX, &mut sched);
                    if out.is_empty() {
                        break;
                    }
                    if !write_lossy(&mut s, &out) {
                        break 'recv;
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break 'recv,
        }
    }
    drop(s);
    attacker.join().expect("attacker thread");

    assert_eq!(
        fatal, outcome.fatal,
        "push-after-goaway: typed error over TCP diverged from the sans-IO suite"
    );
}

#[test]
fn server_keeps_serving_wellbehaved_loads_under_attack() {
    let page = Arc::new(attack_page());
    let mut server = LiveServer::bind(
        "127.0.0.1:0",
        Arc::clone(&page),
        Strategy::PushList { order: vec![ResourceId(1)] },
    )
    .expect("bind loopback");
    let mut limits = LiveLimits::new();
    limits.conn = ConnLimits::strict();
    server.set_limits(limits);
    server.set_deadline(Duration::from_secs(60));
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run());

    // One attacker cycling the whole server-victim catalogue over TCP...
    let attacker = std::thread::spawn(move || {
        for kind in AttackKind::ALL {
            if kind.victim() != Victim::Server {
                continue;
            }
            let script = AttackScript::new(kind, 42);
            let mut s = TcpStream::connect(addr).expect("attacker connect");
            if write_lossy(&mut s, &benign_splice()) {
                for chunk in script.compile() {
                    if !write_lossy(&mut s, &chunk) {
                        break;
                    }
                }
            }
            let _ = s.shutdown(Shutdown::Write);
            read_to_eof(&mut s, kind.label());
        }
    });

    // ...while well-behaved loads keep completing against the same server.
    for round in 0..3 {
        let report =
            load_page(addr, Arc::clone(&page), BrowserConfig::default(), Duration::from_secs(30))
                .expect("live load under attack");
        assert!(
            report.load.finished(),
            "load {round} did not finish while the catalogue was firing: {:?}",
            report.load,
        );
        assert!(!report.load.partial, "load {round} was partial under attack");
        assert_eq!(report.shed_conns, 0, "well-behaved load was shed");
        assert_eq!(report.closed_conns, 0, "well-behaved load was cut off");
    }

    attacker.join().expect("attacker thread");
    handle.stop();
    let stats = server_thread.join().expect("server thread").expect("server run");

    // 8 of the 10 server-victim kinds die of a typed error; the two
    // absorbed kinds and the three loads close clean.
    let errored = stats.close_log.iter().filter(|c| c.error.is_some()).count();
    assert_eq!(errored, 8, "typed-error close count off: {:?}", stats.close_log);
    assert_eq!(stats.closed.protocol_error, 8);
    assert!(stats.closed.clean >= 5, "clean closes missing: {:?}", stats.closed);
    assert!(stats.requests >= 3, "loads did not reach the server");
    assert_eq!(stats.closed.drain_killed, 0);
}

#[test]
fn slow_reader_is_closed_for_write_stall_under_bounded_memory() {
    // A page big enough that neither the kernel's socket buffers nor the
    // bounded output queue can absorb it: the socket must stall.
    let mut b = PageBuilder::new("slowread", "slow.test", 16_000_000, 2_000);
    b.text_paint(4_000, 1.0);
    let page = Arc::new(b.build());

    let mut server =
        LiveServer::bind("127.0.0.1:0", Arc::clone(&page), Strategy::NoPush).expect("bind");
    let mut limits = LiveLimits::new();
    limits.max_queued_bytes = 256 * 1024;
    limits.write_stall_timeout = Duration::from_millis(300);
    limits.drain_deadline = Duration::from_secs(1);
    server.set_limits(limits);
    server.set_deadline(Duration::from_secs(30));
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run());

    // The slow-read attack: request the huge document, grant the server a
    // giant flow-control window (so H2 flow control cannot save it — only
    // the transport-level defense can), then never read a byte.
    let mut s = TcpStream::connect(addr).expect("connect");
    let mut cli = Connection::client(Settings {
        initial_window_size: Some(0x7fff_ffff),
        ..Settings::default()
    });
    let mut sched = DefaultScheduler::new();
    cli.request(
        &[
            h2push_hpack::Header::new(":method", "GET"),
            h2push_hpack::Header::new(":scheme", "https"),
            h2push_hpack::Header::new(":authority", "slow.test"),
            h2push_hpack::Header::new(":path", "/"),
        ],
        Some(PrioritySpec::default()),
    );
    loop {
        let out = cli.produce(usize::MAX, &mut sched);
        if out.is_empty() {
            break;
        }
        s.write_all(&out).expect("write request");
    }
    let mut wu = Vec::new();
    Frame::WindowUpdate { stream: 0, increment: 0x7000_0000 }.encode(&mut wu);
    s.write_all(&wu).expect("write window grant");

    // Go silent. The write-stall deadline (300 ms) must retire the
    // connection long before this wait runs out.
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.accepted() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    std::thread::sleep(Duration::from_millis(1_500));
    handle.stop();
    let stats = server_thread.join().expect("server thread").expect("server run");
    drop(s);

    assert_eq!(stats.closed.write_stall, 1, "slow reader not closed for write stall: {stats:?}");
    assert!(
        stats.close_log.iter().any(|c| c.reason == CloseReason::WriteStall),
        "no write-stall close in the log: {:?}",
        stats.close_log,
    );
    assert_eq!(stats.closed.drain_killed, 0, "stall was only caught by the drain deadline");
    // The per-connection memory bound held: frames are atomic, so the
    // queue may overshoot the cap by at most one max-size frame.
    let bound = 256 * 1024 + h2push_h2proto::DEFAULT_MAX_FRAME_SIZE + 9;
    assert!(
        stats.max_queued_bytes <= bound,
        "output queue exceeded its bound: {} B > {} B",
        stats.max_queued_bytes,
        bound,
    );
    assert!(stats.max_queued_bytes > 0, "server never queued output at all");
}
