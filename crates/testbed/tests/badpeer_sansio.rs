//! The attack catalogue driven through the sans-IO surface alone.
//!
//! The canonical badpeer harness (`run_suite`) pumps each scripted attack
//! through its own drain loops. This suite feeds the *same compiled
//! chunks* straight into the new sans-IO entry points instead —
//! [`Endpoint::feed_bytes`] / [`Endpoint::poll_output`] on a
//! [`ReplayServer`] victim, [`Connection::feed_bytes`] on a client victim
//! — with no harness in between, and asserts every kind dies with (or
//! survives to) the same typed [`ConnError`] as the canonical suite.
//!
//! That is the point of the sans-IO contract: the harness owns nothing
//! the protocol outcome depends on, so removing it must change nothing.

use h2push_h2proto::sansio::{Endpoint, Micros};
use h2push_h2proto::{
    ConnError, ConnLimits, Connection, DefaultScheduler, Event, PrioritySpec, Settings,
};
use h2push_server::ReplayServer;
use h2push_strategies::Strategy;
use h2push_testbed::{attack_page, benign_request, run_suite, AttackKind, AttackScript, Victim};
use h2push_webmodel::{RecordDb, ResourceId};
use std::sync::Arc;

/// Drain the victim's transmit side through the trait: poll until it has
/// nothing to say. Output is discarded — the attacker never reads it.
fn drain(victim: &mut dyn Endpoint, now: Micros) {
    while victim.wants_output() {
        if victim.poll_output(usize::MAX, now).is_empty() {
            break;
        }
    }
}

/// A server-victim attack through `Endpoint` only: benign request in via
/// `feed_bytes`, attack chunks in via `feed_bytes`, replies out via
/// `poll_output`. Returns the typed fatal error (None = absorbed).
fn server_victim_fatal(script: &AttackScript) -> Option<ConnError> {
    let page = Arc::new(attack_page());
    let db = Arc::new(RecordDb::record(&page));
    let mut srv = ReplayServer::new(
        page,
        db,
        0,
        &Arc::new(Strategy::PushList { order: vec![ResourceId(1)] }),
    );
    srv.set_limits(ConnLimits::strict());
    let mut now: Micros = 0;

    // Benign splice-in from a real client connection, as in the harness.
    let mut cli = Connection::client(Settings::default());
    let mut sched = DefaultScheduler::new();
    cli.request(&benign_request(), Some(PrioritySpec::default()));
    loop {
        let out = cli.produce(usize::MAX, &mut sched);
        if out.is_empty() {
            break;
        }
        Endpoint::feed_bytes(&mut srv, &out, now);
    }
    drain(&mut srv, now);

    for chunk in script.compile() {
        now += 100;
        Endpoint::feed_bytes(&mut srv, &chunk, now);
        drain(&mut srv, now);
    }
    srv.fatal_error()
}

/// A client-victim attack through `Connection::feed_bytes` only: the
/// returned event stream is the whole observable outcome.
fn client_victim_fatal(script: &AttackScript) -> Option<ConnError> {
    let mut cli = Connection::client(Settings::default());
    cli.set_limits(ConnLimits::strict());
    let mut sched = DefaultScheduler::new();
    let mut fatal = None;

    cli.request(&benign_request(), Some(PrioritySpec::default()));
    while !cli.produce(usize::MAX, &mut sched).is_empty() {}

    for chunk in script.compile() {
        for ev in cli.feed_bytes(&chunk) {
            if let Event::ConnectionError { error } = ev {
                fatal.get_or_insert(error);
            }
        }
        while !cli.produce(usize::MAX, &mut sched).is_empty() {}
    }
    fatal
}

#[test]
fn all_eleven_attacks_reach_the_same_typed_errors_through_feed_bytes() {
    let seed = 42u64;
    let canonical = run_suite(seed, ConnLimits::strict());
    assert_eq!(canonical.len(), AttackKind::ALL.len());

    for outcome in &canonical {
        let script = AttackScript::new(outcome.kind, outcome.seed);
        let sansio_fatal = match outcome.kind.victim() {
            Victim::Server => server_victim_fatal(&script),
            Victim::Client => client_victim_fatal(&script),
        };
        assert_eq!(
            sansio_fatal,
            outcome.fatal,
            "{}: sans-IO feed_bytes path diverged from the canonical suite",
            outcome.kind.label(),
        );
        assert_eq!(outcome.victim, outcome.kind.victim());
    }

    // The catalogue's known typed outcomes, pinned explicitly so a change
    // in either path (not just a joint drift) fails loudly.
    let fatal_of =
        |kind: AttackKind| canonical.iter().find(|o| o.kind == kind).expect("kind in suite").fatal;
    assert_eq!(fatal_of(AttackKind::RapidReset), Some(ConnError::ResetFlood));
    assert_eq!(fatal_of(AttackKind::SettingsChurn), Some(ConnError::SettingsFlood));
    assert_eq!(fatal_of(AttackKind::PingFlood), Some(ConnError::PingFlood));
    assert_eq!(fatal_of(AttackKind::HpackBomb), Some(ConnError::HeaderListTooLarge));
    assert_eq!(fatal_of(AttackKind::ContinuationFlood), Some(ConnError::HeaderListTooLarge));
    assert_eq!(fatal_of(AttackKind::WindowOverflow), Some(ConnError::FlowControlOverflow));
    assert_eq!(
        fatal_of(AttackKind::StreamIdExhaustion),
        Some(ConnError::ConcurrentStreamsExceeded)
    );
    assert_eq!(fatal_of(AttackKind::OversizedFrame), Some(ConnError::FrameTooLarge));
    assert_eq!(fatal_of(AttackKind::TruncatedFrame), None);
    assert_eq!(fatal_of(AttackKind::UnknownFrames), None);
}

#[test]
fn chunk_boundaries_are_meaningless_to_feed_bytes() {
    // The sans-IO contract: re-chunking the same byte stream cannot
    // change the outcome. Re-split every attack's chunks byte-by-byte.
    for kind in AttackKind::ALL {
        if kind.victim() != Victim::Server {
            continue;
        }
        let script = AttackScript::new(kind, 42);
        let whole = server_victim_fatal(&script);

        let page = Arc::new(attack_page());
        let db = Arc::new(RecordDb::record(&page));
        let mut srv = ReplayServer::new(
            page,
            db,
            0,
            &Arc::new(Strategy::PushList { order: vec![ResourceId(1)] }),
        );
        srv.set_limits(ConnLimits::strict());
        let mut cli = Connection::client(Settings::default());
        let mut sched = DefaultScheduler::new();
        cli.request(&benign_request(), Some(PrioritySpec::default()));
        loop {
            let out = cli.produce(usize::MAX, &mut sched);
            if out.is_empty() {
                break;
            }
            Endpoint::feed_bytes(&mut srv, &out, 0);
        }
        drain(&mut srv, 0);
        let mut now: Micros = 0;
        for chunk in script.compile() {
            now += 100;
            for b in chunk.iter() {
                Endpoint::feed_bytes(&mut srv, &[*b], now);
            }
            drain(&mut srv, now);
        }
        assert_eq!(
            srv.fatal_error(),
            whole,
            "{}: outcome depends on chunk boundaries",
            kind.label(),
        );
    }
}
