//! Chaos integration suite: seeded fault profiles × synthetic sites.
//!
//! The robustness acceptance checks, end to end through the public API:
//! every profile of the default chaos matrix completes on generated sites
//! without a panic, reruns of the same seed are bit-identical, and the
//! zero-fault control profile reproduces the plain harness exactly.

use h2push_strategies::{push_all, Strategy};
use h2push_testbed::{
    apply_profile, default_matrix, replay_shared, run_config, run_fault_matrix, FaultProfile, Mode,
    ReplayInputs, RunPlan,
};
use h2push_webmodel::{generate_site, CorpusKind};

fn site(seed: u64) -> ReplayInputs {
    ReplayInputs::from(generate_site(CorpusKind::Random, seed))
}

#[test]
fn default_matrix_completes_on_synthetic_sites_and_reruns_bit_identically() {
    let inputs = site(11);
    let strategies = vec![Strategy::NoPush, push_all(&inputs.page, &[])];
    let profiles = default_matrix();
    let cells_a = run_fault_matrix(&inputs, &strategies, &profiles, 2, 500);
    let cells_b = run_fault_matrix(&inputs, &strategies, &profiles, 2, 500);
    assert_eq!(cells_a.len(), profiles.len() * strategies.len());
    for (a, b) in cells_a.iter().zip(&cells_b) {
        // Bit-identical rerun: every aggregate agrees exactly.
        assert_eq!(a.profile, b.profile);
        assert_eq!(a.strategy, b.strategy);
        assert_eq!(a.completed, b.completed, "{}/{}", a.profile, a.strategy);
        assert_eq!(a.median_plt, b.median_plt, "{}/{}", a.profile, a.strategy);
        assert_eq!(a.partial_loads, b.partial_loads);
        assert_eq!(a.recovery, b.recovery);
        // No panics and no lost runs anywhere in the matrix.
        assert_eq!(a.completed, a.runs, "{}/{} dropped runs", a.profile, a.strategy);
    }
    // The control cells record no fault activity at all.
    for cell in cells_a.iter().filter(|c| c.profile == "none") {
        assert!(cell.recovery.is_clean(), "control cell {} not clean", cell.strategy);
        assert_eq!(cell.partial_loads, 0);
    }
    // The lossy profiles actually exercised recovery somewhere.
    let faulted_drops: u64 =
        cells_a.iter().filter(|c| c.profile != "none").map(|c| c.recovery.drops()).sum();
    assert!(faulted_drops > 0, "fault matrix never dropped a packet");
}

#[test]
fn zero_fault_profile_reproduces_the_plain_harness_on_a_synthetic_site() {
    let inputs = site(3);
    let control = FaultProfile::none();
    for strategy in [Strategy::NoPush, push_all(&inputs.page, &[])].map(std::sync::Arc::new) {
        for seed in [0u64, 13] {
            let plain = run_config(&strategy, Mode::Testbed, seed, &inputs.page);
            let mut faulted = run_config(&strategy, Mode::Testbed, seed, &inputs.page);
            apply_profile(&mut faulted, &control);
            let a = replay_shared(&inputs, &plain).unwrap();
            let b = replay_shared(&inputs, &faulted).unwrap();
            assert_eq!(a.load, b.load);
            assert_eq!(a.trace.order, b.trace.order);
            assert_eq!(a.server_pushed_bytes, b.server_pushed_bytes);
            assert_eq!(a.net, b.net);
        }
    }
}

#[test]
fn every_default_profile_survives_a_push_heavy_site() {
    // A second site, push-heavy strategy, one run per profile: nothing may
    // panic and every outcome must carry coherent counters.
    let inputs = site(29);
    let strategy = push_all(&inputs.page, &[]);
    for profile in default_matrix() {
        let name = profile.name.clone();
        let out = RunPlan::new(&inputs)
            .strategy(strategy.clone())
            .seed(901)
            .faults(profile)
            .run_one()
            .unwrap_or_else(|e| panic!("profile {name} failed: {e}"))
            .outcome;
        assert!(out.net.data_packets > 0);
        assert!(out.net.drops_total() <= out.net.data_packets);
        assert!(out.load.onload.is_some(), "profile {name}: no onload");
    }
}
