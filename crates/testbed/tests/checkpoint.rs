//! Crash-safety contract of the sweep checkpoint/resume layer.
//!
//! The guarantee under test: **interrupted-then-resumed ≡ uninterrupted**,
//! byte for byte. A journaled sweep halted after any number of completed
//! cells and resumed produces a [`SweepReport`] whose canonical encoding is
//! identical to an undisturbed run of the same grid — and the journal
//! survives the failure modes a real kill produces (torn tail, bit rot),
//! converting corruption into re-executed cells, never into wrong data.

use h2push_strategies::{push_all, Strategy};
use h2push_testbed::{GridIdentity, ResumeError, SweepJournal, SweepPlan};
use h2push_webmodel::{Page, PageBuilder, ResourceSpec};
use std::fs;
use std::path::PathBuf;

fn site_page(seed: u64) -> Page {
    let mut b = PageBuilder::new(
        &format!("ckpt-{seed}"),
        "ckpt.test",
        40_000 + seed as usize * 1_000,
        4_000,
    );
    b.resource(ResourceSpec::css(0, 15_000, 300, 0.4));
    b.resource(ResourceSpec::js(0, 20_000, 1_000, 10_000));
    b.text_paint(8_000, 1.0);
    b.build()
}

/// A 2 strategies × 2 sites × 2 reps grid (4 cells).
fn grid(seed: u64) -> SweepPlan {
    let p0 = site_page(0);
    let p1 = site_page(1);
    let push = push_all(&p0, &[]);
    SweepPlan::new().strategies(vec![Strategy::NoPush, push]).sites([p0, p1]).reps(2).seed(seed)
}

/// Unique scratch path per test (no tempfile dependency in-tree).
fn scratch(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("h2push-{}-{name}.journal", std::process::id()));
    let _ = fs::remove_file(&p);
    p
}

#[test]
fn interrupted_then_resumed_equals_uninterrupted_at_every_cell_boundary() {
    let plan = grid(11);
    let baseline = plan.run();
    let baseline_bytes = baseline.canonical_bytes();
    assert!(baseline.is_complete());

    // Halt after 1, 2, 3 of the 4 cells (an in-process stand-in for a
    // kill at each cell boundary; tests/resume_kill.rs does it with a
    // real SIGKILL), then resume and demand byte equality.
    for halt in 1..4 {
        let path = scratch(&format!("boundary-{halt}"));
        let partial = plan
            .clone()
            .halt_after_journaled(halt)
            .checkpoint(&path)
            .expect("halted checkpoint run");
        assert_eq!(partial.cells.len(), halt, "halted run journaled exactly {halt} cells");

        let resumed = plan.resume(&path).expect("resume");
        assert_eq!(resumed.cells.len(), 4);
        assert!(resumed.is_complete());
        assert_eq!(
            resumed.canonical_bytes(),
            baseline_bytes,
            "resume after {halt} cells must be byte-identical to an uninterrupted run"
        );
        fs::remove_file(&path).ok();
    }
}

#[test]
fn checkpointed_run_without_interruption_matches_plain_run() {
    let plan = grid(5);
    let path = scratch("plain");
    let journaled = plan.checkpoint(&path).expect("checkpointed run");
    assert_eq!(journaled.canonical_bytes(), plan.run().canonical_bytes());
    // Resuming a complete journal re-runs nothing and reports the same.
    let resumed = plan.resume(&path).expect("resume of complete journal");
    assert_eq!(resumed.canonical_bytes(), journaled.canonical_bytes());
    fs::remove_file(&path).ok();
}

#[test]
fn resume_with_no_journal_starts_fresh() {
    let plan = grid(7);
    let path = scratch("fresh");
    let report = plan.resume(&path).expect("resume on a missing file");
    assert_eq!(report.canonical_bytes(), plan.run().canonical_bytes());
    assert!(path.exists(), "the fresh run left a journal behind");
    fs::remove_file(&path).ok();
}

#[test]
fn torn_tail_is_truncated_and_the_cell_rerun() {
    let plan = grid(3);
    let baseline = plan.run().canonical_bytes();
    let path = scratch("torn");
    plan.checkpoint(&path).expect("full checkpointed run");

    // SIGKILL mid-append: the final record is structurally incomplete.
    let bytes = fs::read(&path).expect("journal bytes");
    fs::write(&path, &bytes[..bytes.len() - 5]).expect("tear the tail");

    let (_, records, scan) =
        SweepJournal::load(&path, &plan.identity()).expect("torn journal still loads");
    assert!(scan.torn_tail, "the scan reports the torn tail");
    assert_eq!(scan.accepted, 3, "the three intact cells survive");
    assert_eq!(scan.rejected, 0);
    assert_eq!(records.len(), 3);

    let resumed = plan.resume(&path).expect("resume over the torn journal");
    assert_eq!(resumed.canonical_bytes(), baseline, "the torn cell re-ran");
    fs::remove_file(&path).ok();
}

#[test]
fn bit_flipped_record_is_rejected_by_checksum_and_rerun() {
    let plan = grid(9);
    let baseline = plan.run().canonical_bytes();
    let path = scratch("bitflip");
    plan.checkpoint(&path).expect("full checkpointed run");

    // Flip one bit deep inside the last record's payload (well clear of
    // the frame header, so framing stays intact and only the checksum
    // can catch it).
    let mut bytes = fs::read(&path).expect("journal bytes");
    let pos = bytes.len() - 3;
    bytes[pos] ^= 0x40;
    fs::write(&path, &bytes).expect("corrupt the journal");

    let (_, records, scan) =
        SweepJournal::load(&path, &plan.identity()).expect("corrupt journal still loads");
    assert_eq!(scan.rejected, 1, "the checksum rejects the flipped record");
    assert_eq!(scan.accepted, 3);
    assert_eq!(records.len(), 3);

    let resumed = plan.resume(&path).expect("resume over the corrupt journal");
    assert_eq!(resumed.canonical_bytes(), baseline, "the rejected cell re-ran");
    fs::remove_file(&path).ok();
}

#[test]
fn journal_of_a_different_grid_is_refused() {
    let plan = grid(21);
    let path = scratch("mismatch");
    plan.checkpoint(&path).expect("checkpointed run");

    // Same sites and strategies, different seed — different experiment.
    let other = grid(22);
    match other.resume(&path) {
        Err(ResumeError::IdentityMismatch { expected, found }) => {
            assert_eq!(expected, other.identity().summary);
            assert_eq!(found, plan.identity().summary);
            assert_ne!(expected, found);
        }
        other => panic!("expected IdentityMismatch, got {other:?}"),
    }
    fs::remove_file(&path).ok();
}

#[test]
fn garbage_and_unsupported_files_fail_with_typed_errors() {
    let plan = grid(1);
    let path = scratch("garbage");
    fs::write(&path, b"definitely not a journal").expect("write garbage");
    assert!(matches!(plan.resume(&path), Err(ResumeError::NotAJournal { .. })));

    // Valid magic, unknown version.
    let good = scratch("version");
    plan.checkpoint(&good).expect("checkpointed run");
    let mut bytes = fs::read(&good).expect("journal bytes");
    bytes[8] = 99; // the version field follows the 8-byte magic
    fs::write(&path, &bytes).expect("rewrite with bumped version");
    match plan.resume(&path) {
        Err(ResumeError::UnsupportedVersion { found: 99 }) => {}
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }

    // An empty file is not a journal either.
    fs::write(&path, b"").expect("write empty");
    assert!(matches!(plan.resume(&path), Err(ResumeError::NotAJournal { .. })));
    fs::remove_file(&path).ok();
    fs::remove_file(&good).ok();
}

#[test]
fn duplicate_records_replay_last_wins() {
    let plan = grid(15);
    let path = scratch("dup");
    let report = plan.checkpoint(&path).expect("checkpointed run");

    // Re-append cell 0's record verbatim (the duplicate a kill between
    // journal append and bookkeeping produces on resume).
    let id = plan.identity();
    let (mut journal, records, _) = SweepJournal::load(&path, &id).expect("load");
    journal.append(&records[0]).expect("append duplicate");
    drop(journal);

    let resumed = plan.resume(&path).expect("resume with duplicate record");
    assert_eq!(resumed.canonical_bytes(), report.canonical_bytes());
    fs::remove_file(&path).ok();
}

#[test]
fn journal_primitives_round_trip_through_load() {
    let id = GridIdentity { hash: 0xdead_beef, summary: "unit grid".into() };
    let path = scratch("prims");
    let mut j = SweepJournal::create(&path, &id).expect("create");
    let payloads: Vec<Vec<u8>> = (0u8..3).map(|i| vec![i; 64 + i as usize]).collect();
    for p in &payloads {
        j.append(p).expect("append");
    }
    drop(j);
    let (_, records, scan) = SweepJournal::load(&path, &id).expect("load");
    assert_eq!(records, payloads);
    assert_eq!(scan.accepted, 3);
    assert!(!scan.torn_tail);

    // Appending after a load extends the clean tail.
    let (mut j, _, _) = SweepJournal::load(&path, &id).expect("reload");
    j.append(b"tail").expect("append after load");
    drop(j);
    let (_, records, _) = SweepJournal::load(&path, &id).expect("final load");
    assert_eq!(records.len(), 4);
    assert_eq!(records[3], b"tail");
    fs::remove_file(&path).ok();
}

#[test]
fn streaming_checkpoint_resume_is_byte_identical_and_matches_retained_stats() {
    let retained = grid(33);
    let streaming = retained.clone().streaming();
    let baseline = streaming.run();
    assert!(baseline.streaming);
    assert!(baseline.cells.iter().all(|c| c.report.is_empty()), "outputs dropped");

    let path = scratch("streaming");
    streaming
        .clone()
        .halt_after_journaled(2)
        .checkpoint(&path)
        .expect("halted streaming checkpoint");
    let resumed = streaming.resume(&path).expect("streaming resume");
    assert_eq!(resumed.canonical_bytes(), baseline.canonical_bytes());

    // Population percentiles agree bit-for-bit with the retained-mode run.
    let pop_s = resumed.population();
    let pop_r = retained.run().population();
    assert_eq!(pop_s, pop_r);
    assert_eq!(pop_s.plt.p50(), pop_r.plt.p50());
    fs::remove_file(&path).ok();
}

/// The acceptance-scale streaming sweep: ≥ 10_000 cells complete with
/// per-rep outputs dropped, and the population percentiles match the
/// retained-mode computation exactly. Too slow for the debug-mode tier-1
/// suite on one core; CI's `resume-smoke` job runs it in release
/// (`cargo test --release -- --ignored`).
#[test]
#[ignore = "population-scale; run in release via CI resume-smoke"]
fn ten_thousand_cell_streaming_sweep_is_bounded_and_exact() {
    let p0 = site_page(0);
    // 2500 distinct push-list strategies × 4 sites = 10_000 cells. The
    // strategy list is rotated so cells genuinely differ.
    let base = push_all(&p0, &[]);
    let order = match &base {
        Strategy::PushList { order } => order.clone(),
        _ => unreachable!(),
    };
    let mut strategies = Vec::with_capacity(2500);
    for i in 0..2500 {
        let mut o = order.clone();
        let k = i % o.len().max(1);
        o.rotate_left(k);
        strategies.push(Strategy::PushList { order: o });
    }
    let plan = SweepPlan::new()
        .strategies(strategies)
        .sites([p0, site_page(1), site_page(2), site_page(3)])
        .reps(1)
        .seed(77);

    let streamed = plan.clone().streaming().run();
    assert_eq!(streamed.cells.len(), 10_000);
    assert!(streamed.is_complete());
    assert!(streamed.cells.iter().all(|c| c.report.is_empty()), "outputs dropped");

    let retained = plan.run();
    let sp = streamed.population();
    let rp = retained.population();
    assert_eq!(sp, rp, "streaming and retained population stats are bit-identical");
    assert_eq!(sp.plt.count(), 10_000);
    assert!(sp.plt.p99().unwrap() >= sp.plt.p50().unwrap());
}
