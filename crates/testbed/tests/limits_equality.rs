//! Benign-inertness equality suite: the limits-enforced stack must be
//! **byte-identical** to a stack with enforcement effectively disabled on
//! every benign workload.
//!
//! Resource limits are local policy — never advertised in SETTINGS, never
//! adding or reordering frames — so swapping [`ConnLimits::new`] for
//! [`ConnLimits::permissive`] (all bounds at their type maxima, i.e. the
//! pre-enforcement behaviour) must not move a single byte: same load
//! metrics, same request order, same traced frame sequence, same network
//! counters. This suite asserts that across 3 sites × 3 strategies ×
//! {traced, untraced} × {fault-free, 2 % Gilbert–Elliott loss}.

use h2push_h2proto::ConnLimits;
use h2push_strategies::{push_all, Strategy};
use h2push_testbed::{FaultProfile, ReplayInputs, RunPlan, TraceSpec};
use h2push_webmodel::{generate_site, CorpusKind, Page, ResourceId};

fn sites() -> Vec<ReplayInputs> {
    [5u64, 17, 23]
        .iter()
        .map(|&s| ReplayInputs::from(generate_site(CorpusKind::Random, s)))
        .collect()
}

fn strategies(page: &Page) -> Vec<Strategy> {
    let pushable = page.pushable();
    let critical: Vec<ResourceId> = pushable.iter().take(2).copied().collect();
    let after: Vec<ResourceId> = pushable.iter().skip(2).take(2).copied().collect();
    vec![
        Strategy::NoPush,
        push_all(page, &[]),
        Strategy::Interleaved { offset: 6_000, critical, after },
    ]
}

fn run(
    inputs: &ReplayInputs,
    strategy: &Strategy,
    trace: TraceSpec,
    faults: Option<FaultProfile>,
    limits: ConnLimits,
) -> h2push_testbed::RunReport {
    let mut plan = RunPlan::new(inputs)
        .strategy(strategy.clone())
        .reps(2)
        .seed(71)
        .trace(trace)
        .limits(limits);
    if let Some(f) = faults {
        plan = plan.faults(f);
    }
    plan.run()
}

fn assert_identical(a: &h2push_testbed::RunReport, b: &h2push_testbed::RunReport, label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: rep count diverged");
    for (x, y) in a.outcomes().zip(b.outcomes()) {
        assert_eq!(x.load, y.load, "{label}: load metrics diverged");
        assert_eq!(x.trace.order, y.trace.order, "{label}: request order diverged");
        assert_eq!(x.server_pushed_bytes, y.server_pushed_bytes, "{label}: push bytes diverged");
        assert_eq!(x.net, y.net, "{label}: network counters diverged");
    }
    for (x, y) in a.timelines().zip(b.timelines()) {
        assert_eq!(x.events().len(), y.events().len(), "{label}: traced event count diverged");
        for (ex, ey) in x.events().iter().zip(y.events().iter()) {
            assert_eq!(ex, ey, "{label}: traced event diverged");
        }
    }
}

#[test]
fn enforced_limits_are_byte_identical_to_permissive_on_benign_workloads() {
    for (si, inputs) in sites().iter().enumerate() {
        for strategy in strategies(&inputs.page) {
            for trace in [TraceSpec::Off, TraceSpec::Timeline] {
                for faults in [None, Some(FaultProfile::gilbert_elliott(0.02))] {
                    let label = format!(
                        "site {si} / {:?} / trace {:?} / faults {}",
                        std::mem::discriminant(&strategy),
                        matches!(trace, TraceSpec::Timeline),
                        faults.is_some()
                    );
                    let enforced = run(inputs, &strategy, trace, faults.clone(), ConnLimits::new());
                    let permissive =
                        run(inputs, &strategy, trace, faults.clone(), ConnLimits::permissive());
                    assert_identical(&enforced, &permissive, &label);
                }
            }
        }
    }
}

#[test]
fn default_config_limits_are_the_enforcement_defaults() {
    // A plan with no explicit limits runs under ConnLimits::new() — the
    // enforced defaults, not the permissive escape hatch.
    let cfg = h2push_testbed::ReplayConfig::testbed(Strategy::NoPush);
    assert_eq!(cfg.limits, ConnLimits::new());
}
