//! Live-mode acceptance: the sans-IO machines complete a real page load
//! over real loopback TCP, with server push crossing the wire.
//!
//! This is the PR's live-serving gate — the same `ReplayServer` and
//! `Browser` state machines the simulator drives, re-hosted on the
//! `poll(2)` runtime, must agree with each other byte-for-byte well
//! enough to finish a full corpus-site load and deliver pushed
//! resources.
#![cfg(unix)]

use h2push_browser::BrowserConfig;
use h2push_strategies::{push_all, Strategy};
use h2push_testbed::{load_page, LiveServer};
use h2push_webmodel::{generate_site, CorpusKind};
use std::sync::Arc;
use std::time::Duration;

fn serve_and_load(
    page: Arc<h2push_webmodel::Page>,
    strategy: Strategy,
) -> (h2push_testbed::LiveLoadReport, h2push_testbed::LiveServerStats) {
    let mut server =
        LiveServer::bind("127.0.0.1:0", Arc::clone(&page), strategy).expect("bind loopback");
    // Belt and braces: the handle stops the server, the deadline bounds a
    // wedged test run.
    server.set_deadline(Duration::from_secs(60));
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run());

    let report = load_page(addr, page, BrowserConfig::default(), Duration::from_secs(30))
        .expect("live load");
    handle.stop();
    let stats = server_thread.join().expect("server thread").expect("server run");
    (report, stats)
}

#[test]
fn loopback_load_completes_with_push() {
    let page = Arc::new(generate_site(CorpusKind::Random, 7));
    let strategy = push_all(&page, &[]);
    let (report, stats) = serve_and_load(Arc::clone(&page), strategy);

    assert!(report.load.finished(), "live load did not reach onload: {:?}", report.load);
    assert!(!report.load.partial, "live load was partial");
    assert_eq!(report.load.failed_resources, 0, "live load dropped resources");
    assert!(report.load.pushed_count > 0, "no resources arrived via push");
    assert!(report.load.pushed_bytes > 0, "push streams carried no bytes");
    // Push can satisfy a group's resources before its connection is ever
    // needed, so only the origin connection is guaranteed.
    assert!(report.conns >= 1, "no connections opened");

    assert!(stats.accepted >= report.conns as u64, "server missed connections");
    assert!(stats.pushed_bytes > 0, "server pushed nothing");
    assert_eq!(stats.protocol_errors, 0, "server saw protocol errors from our own browser");
    // Both ends count wire bytes; they watched the same sockets.
    assert_eq!(stats.bytes_out, report.bytes_in, "server-sent vs client-received bytes");
    assert_eq!(stats.bytes_in, report.bytes_out, "client-sent vs server-received bytes");
}

#[test]
fn loopback_load_completes_without_push() {
    let page = Arc::new(generate_site(CorpusKind::Random, 11));
    let (report, stats) = serve_and_load(Arc::clone(&page), Strategy::NoPush);

    assert!(report.load.finished(), "no-push live load did not finish: {:?}", report.load);
    assert_eq!(report.load.pushed_count, 0, "NoPush strategy pushed anyway");
    assert_eq!(stats.pushed_bytes, 0);
    assert_eq!(stats.protocol_errors, 0);
}
