//! Live-mode acceptance: the sans-IO machines complete a real page load
//! over real loopback TCP, with server push crossing the wire.
//!
//! This is the PR's live-serving gate — the same `ReplayServer` and
//! `Browser` state machines the simulator drives, re-hosted on the
//! `poll(2)` runtime, must agree with each other byte-for-byte well
//! enough to finish a full corpus-site load and deliver pushed
//! resources.
#![cfg(unix)]

use h2push_browser::BrowserConfig;
use h2push_h2proto::{Connection, DefaultScheduler, PrioritySpec, Settings};
use h2push_strategies::{push_all, Strategy};
use h2push_testbed::{load_page, CloseReason, LiveLimits, LiveServer, TimeoutKind};
use h2push_webmodel::{generate_site, CorpusKind, PageBuilder, ResourceSpec};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn serve_and_load(
    page: Arc<h2push_webmodel::Page>,
    strategy: Strategy,
) -> (h2push_testbed::LiveLoadReport, h2push_testbed::LiveServerStats) {
    let mut server =
        LiveServer::bind("127.0.0.1:0", Arc::clone(&page), strategy).expect("bind loopback");
    // Belt and braces: the handle stops the server, the deadline bounds a
    // wedged test run.
    server.set_deadline(Duration::from_secs(60));
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run());

    let report = load_page(addr, page, BrowserConfig::default(), Duration::from_secs(30))
        .expect("live load");
    handle.stop();
    let stats = server_thread.join().expect("server thread").expect("server run");
    (report, stats)
}

#[test]
fn loopback_load_completes_with_push() {
    let page = Arc::new(generate_site(CorpusKind::Random, 7));
    let strategy = push_all(&page, &[]);
    let (report, stats) = serve_and_load(Arc::clone(&page), strategy);

    assert!(report.load.finished(), "live load did not reach onload: {:?}", report.load);
    assert!(!report.load.partial, "live load was partial");
    assert_eq!(report.load.failed_resources, 0, "live load dropped resources");
    assert!(report.load.pushed_count > 0, "no resources arrived via push");
    assert!(report.load.pushed_bytes > 0, "push streams carried no bytes");
    // Push can satisfy a group's resources before its connection is ever
    // needed, so only the origin connection is guaranteed.
    assert!(report.conns >= 1, "no connections opened");

    assert!(stats.accepted >= report.conns as u64, "server missed connections");
    assert!(stats.pushed_bytes > 0, "server pushed nothing");
    assert_eq!(stats.protocol_errors, 0, "server saw protocol errors from our own browser");
    // Both ends count wire bytes; they watched the same sockets.
    assert_eq!(stats.bytes_out, report.bytes_in, "server-sent vs client-received bytes");
    assert_eq!(stats.bytes_in, report.bytes_out, "client-sent vs server-received bytes");
}

#[test]
fn loopback_load_completes_without_push() {
    let page = Arc::new(generate_site(CorpusKind::Random, 11));
    let (report, stats) = serve_and_load(Arc::clone(&page), Strategy::NoPush);

    assert!(report.load.finished(), "no-push live load did not finish: {:?}", report.load);
    assert_eq!(report.load.pushed_count, 0, "NoPush strategy pushed anyway");
    assert_eq!(stats.pushed_bytes, 0);
    assert_eq!(stats.protocol_errors, 0);
}

/// A small single-origin page (one connection, so drain and supervision
/// tests have no per-group connect races).
fn single_origin_page(html: usize) -> Arc<h2push_webmodel::Page> {
    let mut b = PageBuilder::new("live-single", "live.test", html, 2_000);
    b.resource(ResourceSpec::css(0, 6_000, 200, 0.5));
    b.resource(ResourceSpec::js(0, 8_000, 900, 4_000));
    b.text_paint(4_000, 1.0);
    Arc::new(b.build())
}

#[test]
fn graceful_drain_finishes_inflight_load_and_closes_listener() {
    let page = single_origin_page(600_000);
    let strategy = push_all(&page, &[]);
    let mut server =
        LiveServer::bind("127.0.0.1:0", Arc::clone(&page), strategy).expect("bind loopback");
    let mut limits = LiveLimits::new();
    limits.drain_deadline = Duration::from_secs(20);
    server.set_limits(limits);
    server.set_deadline(Duration::from_secs(60));
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run());

    let load_page_arc = Arc::clone(&page);
    let load_thread = std::thread::spawn(move || {
        load_page(addr, load_page_arc, BrowserConfig::default(), Duration::from_secs(30))
    });

    // stop() mid-load: wait until the browser's connection is accepted,
    // then ask the server to drain while responses are still in flight.
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.accepted() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(handle.accepted() >= 1, "load never connected");
    handle.stop();

    let report = load_thread.join().expect("load thread").expect("live load");
    assert!(report.load.finished(), "in-flight load was cut off by drain: {:?}", report.load);
    assert!(!report.load.partial);

    let stats = server_thread.join().expect("server thread").expect("server run");
    assert_eq!(stats.closed.drain_killed, 0, "drain killed a finishing load");
    assert!(stats.closed.clean >= 1, "drained connection was not closed clean: {stats:?}");
    assert_eq!(stats.bytes_out, report.bytes_in, "drain lost queued bytes");

    // The listener socket is closed: new connections are refused.
    assert!(TcpStream::connect(addr).is_err(), "listener still accepting after drain completed");
}

#[test]
fn accept_gate_sheds_above_max_conns() {
    let page = single_origin_page(20_000);
    let mut server =
        LiveServer::bind("127.0.0.1:0", Arc::clone(&page), Strategy::NoPush).expect("bind");
    let mut limits = LiveLimits::new();
    limits.max_conns = 1;
    server.set_limits(limits);
    server.set_deadline(Duration::from_secs(30));
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run());

    let first = TcpStream::connect(addr).expect("first connect");
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.accepted() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(handle.accepted(), 1, "first connection not admitted");

    // The gate is full: the second connection is accepted then
    // immediately closed — the client observes EOF, not a hang.
    let mut second = TcpStream::connect(addr).expect("second connect");
    second.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = [0u8; 64];
    assert_eq!(second.read(&mut buf).expect("shed read"), 0, "shed conn did not see EOF");

    drop(first);
    drop(second);
    handle.stop();
    let stats = server_thread.join().expect("server thread").expect("run");
    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.closed.shed, 1);
    assert!(stats.close_log.iter().any(|c| c.reason == CloseReason::Shed && c.error.is_none()));
}

#[test]
fn preface_header_and_idle_deadlines_close_silent_conns() {
    let page = single_origin_page(20_000);
    let mut server =
        LiveServer::bind("127.0.0.1:0", Arc::clone(&page), Strategy::NoPush).expect("bind");
    let mut limits = LiveLimits::new();
    limits.preface_timeout = Duration::from_millis(150);
    limits.header_timeout = Duration::from_millis(200);
    limits.idle_timeout = Duration::from_millis(200);
    limits.drain_deadline = Duration::from_secs(5);
    server.set_limits(limits);
    server.set_deadline(Duration::from_secs(30));
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run());

    let read_to_eof = |s: &mut TcpStream, label: &str| {
        s.set_read_timeout(Some(Duration::from_millis(100))).unwrap();
        let mut buf = [0u8; 4096];
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match s.read(&mut buf) {
                Ok(0) => return,
                Ok(_) => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                // A reset also proves the server retired the conn.
                Err(_) => return,
            }
            assert!(Instant::now() < deadline, "{label}: server never closed the conn");
        }
    };

    // 1. Silent peer: never sends the preface.
    let mut silent = TcpStream::connect(addr).expect("silent connect");
    read_to_eof(&mut silent, "preface timeout");

    // 2. Preface but no request: a real client Connection with no
    //    request queued emits exactly preface + SETTINGS.
    let mut noreq = TcpStream::connect(addr).expect("preface-only connect");
    let mut cli = Connection::client(Settings::default());
    let mut sched = DefaultScheduler::new();
    loop {
        let out = cli.produce(usize::MAX, &mut sched);
        if out.is_empty() {
            break;
        }
        noreq.write_all(&out).expect("write preface");
    }
    read_to_eof(&mut noreq, "header timeout");

    // 3. A full request, then silence: idle supervision retires it.
    let mut idle = TcpStream::connect(addr).expect("idle connect");
    let mut cli = Connection::client(Settings::default());
    let mut sched = DefaultScheduler::new();
    cli.request(
        &[
            h2push_hpack::Header::new(":method", "GET"),
            h2push_hpack::Header::new(":scheme", "https"),
            h2push_hpack::Header::new(":authority", "live.test"),
            h2push_hpack::Header::new(":path", "/"),
        ],
        Some(PrioritySpec::default()),
    );
    loop {
        let out = cli.produce(usize::MAX, &mut sched);
        if out.is_empty() {
            break;
        }
        idle.write_all(&out).expect("write request");
    }
    read_to_eof(&mut idle, "idle timeout");

    handle.stop();
    let stats = server_thread.join().expect("server thread").expect("run");
    let timeouts: Vec<TimeoutKind> = stats
        .close_log
        .iter()
        .filter_map(|c| match c.reason {
            CloseReason::Timeout(kind) => Some(kind),
            _ => None,
        })
        .collect();
    assert!(timeouts.contains(&TimeoutKind::Preface), "no preface timeout: {stats:?}");
    assert!(timeouts.contains(&TimeoutKind::HeaderReceive), "no header timeout: {stats:?}");
    assert!(timeouts.contains(&TimeoutKind::Idle), "no idle timeout: {stats:?}");
    assert_eq!(stats.closed.timeout, 3);
}
