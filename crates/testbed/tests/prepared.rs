//! The PreparedPage determinism contract, end to end through the public
//! API: a replay backed by the page-level artifact (pre-scanned parser
//! index, pre-formatted header lists, memoized HPACK blocks, pre-chunked
//! bodies) is **byte-identical** to the live path, for every strategy,
//! traced and untraced, with and without injected faults. The artifact
//! may only change how fast a rep runs — never a single output bit.

use h2push_strategies::Strategy;
use h2push_testbed::{FaultProfile, Mode, ReplayInputs, RunPlan, SweepPlan};
use h2push_webmodel::{generate_site, CorpusKind, ResourceId};

fn strategies() -> Vec<(&'static str, Strategy)> {
    vec![
        ("no-push", Strategy::NoPush),
        ("push-list", Strategy::PushList { order: vec![ResourceId(1), ResourceId(2)] }),
        (
            "interleaved",
            Strategy::Interleaved {
                offset: 2_000,
                critical: vec![ResourceId(1)],
                after: vec![ResourceId(2)],
            },
        ),
    ]
}

/// Run `plan` live and with `.prepared()`, serially (rep order fixed),
/// and assert every rep agrees on every observable output.
fn assert_prepared_matches_live(plan: RunPlan, what: &str) {
    let live = plan.clone().serial().run();
    let prepared = plan.prepared().serial().run();
    assert_eq!(live.len(), prepared.len(), "{what}: completed rep count diverged");
    assert!(!live.is_empty(), "{what}: no reps completed — the scenario is vacuous");
    for (rep, (a, b)) in live.runs.iter().zip(&prepared.runs).enumerate() {
        assert_eq!(a.outcome.load, b.outcome.load, "{what} rep {rep}: load metrics diverged");
        assert_eq!(
            a.outcome.trace.order, b.outcome.trace.order,
            "{what} rep {rep}: request order diverged"
        );
        assert_eq!(
            a.outcome.server_pushed_bytes, b.outcome.server_pushed_bytes,
            "{what} rep {rep}: pushed bytes diverged"
        );
        assert_eq!(a.outcome.net, b.outcome.net, "{what} rep {rep}: net stats diverged");
        assert_eq!(a.timeline, b.timeline, "{what} rep {rep}: timelines diverged");
    }
}

/// Property sweep: synthetic sites × all strategies × traced/untraced ×
/// fault-free and 2% Gilbert–Elliott loss. Prepared replay must be
/// byte-identical to live replay in every cell.
#[test]
fn prepared_replay_is_byte_identical_to_live() {
    for site_seed in [11u64, 23, 47] {
        let inputs = ReplayInputs::from(generate_site(CorpusKind::Random, site_seed));
        for (label, strategy) in strategies() {
            for traced in [false, true] {
                for faults in [false, true] {
                    let mut plan = RunPlan::new(&inputs)
                        .strategy(strategy.clone())
                        .mode(Mode::Testbed)
                        .reps(3)
                        .seed(site_seed ^ 0x5eed);
                    if traced {
                        plan = plan.traced();
                    }
                    if faults {
                        plan = plan.faults(FaultProfile::gilbert_elliott(0.02));
                    }
                    let what =
                        format!("site {site_seed} / {label} / traced={traced} / ge2%={faults}");
                    assert_prepared_matches_live(plan, &what);
                }
            }
        }
    }
}

/// Internet mode draws stochastic conditions from the seed; the artifact
/// must not perturb that draw either.
#[test]
fn prepared_replay_matches_live_under_internet_mode() {
    let inputs = ReplayInputs::from(generate_site(CorpusKind::Random, 5));
    for (label, strategy) in strategies() {
        let plan = RunPlan::new(&inputs)
            .strategy(strategy.clone())
            .mode(Mode::Internet)
            .reps(3)
            .seed(99)
            .traced();
        assert_prepared_matches_live(plan, &format!("internet / {label}"));
    }
}

/// A sweep grid (which always prepares its sites) agrees cell-for-cell
/// with live unprepared plans, traced timelines included.
#[test]
fn sweep_cells_match_live_unprepared_plans() {
    let pages: Vec<_> = [31u64, 37].iter().map(|&s| generate_site(CorpusKind::Random, s)).collect();
    let strategies = vec![Strategy::NoPush, Strategy::PushList { order: vec![ResourceId(1)] }];
    let report = SweepPlan::new()
        .strategies(strategies.clone())
        .sites(pages.iter().cloned())
        .reps(2)
        .seed(7)
        .run();
    assert_eq!(report.cells.len(), strategies.len() * pages.len());
    for cell in &report.cells {
        let page = pages.iter().find(|p| p.name == cell.site).expect("site page");
        let strategy = strategies
            .iter()
            .find(|s| h2push_testbed::strategy_label(s) == cell.strategy)
            .expect("strategy");
        let live = RunPlan::new(page).strategy(strategy.clone()).reps(2).seed(7).serial().run();
        assert_eq!(cell.report.len(), live.len(), "{}/{}", cell.strategy, cell.site);
        for (a, b) in cell.report.outcomes().zip(live.outcomes()) {
            assert_eq!(a.load, b.load, "{}/{}", cell.strategy, cell.site);
            assert_eq!(a.trace.order, b.trace.order);
            assert_eq!(a.net, b.net);
        }
    }
}
