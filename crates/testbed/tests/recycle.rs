//! Recycled-vs-cold equality: a [`ReplayCtx`] reused across repetitions —
//! and across *unrelated* pages, strategies, protocols and fault profiles —
//! must produce byte-identical outputs to a context constructed fresh for
//! every run. This is the contract that makes run-context recycling a pure
//! performance optimisation: the allocation gate may assume recycled runs
//! are THE runs.
//!
//! Matrix covered here: {NoPush, PushList, Interleaved} × {Testbed,
//! Internet} × {fault-free, 2% Gilbert-Elliott} × {traced, untraced} ×
//! {prepared, unprepared} × {H2, H1}, plus cross-page contamination
//! (one context serving two different sites alternately).

use h2push_strategies::Strategy;
use h2push_testbed::{
    replay_in, replay_shared, FaultProfile, Mode, Protocol, ReplayConfig, ReplayCtx, ReplayInputs,
    RunPlan,
};
use h2push_webmodel::{Page, PageBuilder, ResourceId, ResourceSpec};

const REPS: usize = 3;

fn page() -> Page {
    let mut b = PageBuilder::new("recycle", "rc.test", 55_000, 4_000);
    let third = b.origin("cdn.other.net", 1, false);
    b.resource(ResourceSpec::css(0, 15_000, 300, 0.4)); // 1
    b.resource(ResourceSpec::js(0, 22_000, 1_000, 14_000)); // 2
    b.resource(ResourceSpec::image(0, 28_000, 9_000, true, 1.5)); // 3
    b.resource(ResourceSpec::js_async(third, 8_000, 25_000, 4_000)); // 4
    b.text_paint(8_000, 1.0);
    b.text_paint(30_000, 1.0);
    b.build()
}

fn other_page() -> Page {
    let mut b = PageBuilder::new("recycle-b", "rb.test", 90_000, 6_000);
    b.resource(ResourceSpec::css(0, 25_000, 500, 0.3)); // 1
    b.resource(ResourceSpec::image(0, 45_000, 18_000, true, 2.0)); // 2
    b.text_paint(12_000, 1.0);
    b.build()
}

fn strategies() -> Vec<Strategy> {
    vec![
        Strategy::NoPush,
        Strategy::PushList { order: vec![ResourceId(1), ResourceId(2)] },
        Strategy::Interleaved {
            offset: 6_000,
            critical: vec![ResourceId(1)],
            after: vec![ResourceId(3)],
        },
    ]
}

/// The tentpole contract: one context recycled across every rep of every
/// cell of the full strategy × mode × fault × preparation matrix agrees
/// byte-for-byte with a context built fresh per rep. The persistent
/// context deliberately crosses cell boundaries so stale state from one
/// configuration would poison the next and fail loudly here.
#[test]
fn recycled_ctx_matches_cold_ctx_across_the_matrix() {
    let p = page();
    let mut warm = ReplayCtx::new();
    for strategy in strategies() {
        for mode in [Mode::Testbed, Mode::Internet] {
            for faults in [None, Some(FaultProfile::gilbert_elliott(0.02))] {
                for prepared in [false, true] {
                    let mut plan =
                        RunPlan::new(&p).strategy(strategy.clone()).mode(mode).seed(11).reps(REPS);
                    if let Some(f) = &faults {
                        plan = plan.faults(f.clone());
                    }
                    if prepared {
                        plan = plan.prepared();
                    }
                    for rep in 0..REPS {
                        let cold = plan.run_rep_in(rep, &mut ReplayCtx::new());
                        let recycled = plan.run_rep_in(rep, &mut warm);
                        assert_eq!(
                            cold,
                            recycled,
                            "recycled ctx diverged: strategy {strategy:?} mode {mode:?} \
                             faults {} prepared {prepared} rep {rep}",
                            faults.is_some(),
                        );
                    }
                }
            }
        }
    }
}

/// Traced runs through a recycled context carry the same timelines (and
/// outcomes) as traced runs through fresh contexts, and as the public
/// pooled path.
#[test]
fn recycled_ctx_preserves_traced_timelines() {
    let p = page();
    let plan = RunPlan::new(&p)
        .strategy(Strategy::PushList { order: vec![ResourceId(1)] })
        .seed(7)
        .reps(REPS)
        .traced();
    let pooled = plan.run();
    assert_eq!(pooled.len(), REPS);
    let mut warm = ReplayCtx::new();
    for rep in 0..REPS {
        let cold = plan.run_rep_in(rep, &mut ReplayCtx::new()).expect("cold rep");
        let recycled = plan.run_rep_in(rep, &mut warm).expect("recycled rep");
        assert_eq!(cold, recycled, "traced rep {rep} diverged under recycling");
        assert_eq!(&pooled.runs[rep], &recycled, "pooled path diverged at rep {rep}");
        assert!(recycled.timeline.as_ref().is_some_and(|t| !t.is_empty()));
    }
}

/// HTTP/1.1 replays recycle through the same context type (spare H1
/// connections, shared FIFOs) and must agree with the public entry point.
#[test]
fn recycled_ctx_matches_cold_over_h1() {
    let p = page();
    let inputs = ReplayInputs::from(&p);
    let mut cfg = ReplayConfig::testbed(Strategy::NoPush);
    cfg.protocol = Protocol::H1;
    let mut warm = ReplayCtx::new();
    for rep in 0..REPS {
        let cold = replay_shared(&inputs, &cfg).expect("cold h1");
        let recycled = replay_in(&inputs, &cfg, &mut warm).expect("recycled h1");
        assert_eq!(cold, recycled, "h1 rep {rep} diverged under recycling");
    }
}

/// Alternating two unrelated pages — and protocols — through one context
/// must not leak state between them: each load agrees with a fresh-context
/// load of the same page every time.
#[test]
fn recycled_ctx_does_not_leak_state_across_pages_or_protocols() {
    let a = ReplayInputs::from(&page()).prepared();
    let b = ReplayInputs::from(&other_page());
    let cfg_h2 = ReplayConfig::testbed(Strategy::PushList { order: vec![ResourceId(1)] });
    let mut cfg_h1 = ReplayConfig::testbed(Strategy::NoPush);
    cfg_h1.protocol = Protocol::H1;
    let mut warm = ReplayCtx::new();
    for round in 0..REPS {
        for (inputs, cfg) in [(&a, &cfg_h2), (&b, &cfg_h2), (&a, &cfg_h1), (&b, &cfg_h1)] {
            let cold = replay_in(inputs, cfg, &mut ReplayCtx::new()).expect("cold");
            let recycled = replay_in(inputs, cfg, &mut warm).expect("recycled");
            assert_eq!(
                cold, recycled,
                "round {round}: context leaked state across pages/protocols"
            );
        }
    }
}
