//! Kill-resume equality with a real SIGKILL.
//!
//! `tests/checkpoint.rs` proves resume equality with an in-process halt
//! at every cell boundary; this test proves it against the genuine
//! failure mode: the whole process destroyed by an uncatchable signal —
//! no destructors, no flushes, no atexit. The test re-spawns its own
//! binary as a child (selected via an environment variable), lets the
//! child journal two cells and SIGKILL itself, verifies the child
//! actually died by signal 9, then resumes from the orphaned journal and
//! demands byte equality with an uninterrupted run.

use h2push_strategies::{push_all, Strategy};
use h2push_testbed::SweepPlan;
use h2push_webmodel::{Page, PageBuilder, ResourceSpec};
use std::fs;
use std::path::PathBuf;

/// Selects the child role and carries the journal path.
const CHILD_ENV: &str = "H2PUSH_RESUME_KILL_CHILD";

fn site_page(seed: u64) -> Page {
    let mut b = PageBuilder::new(
        &format!("kill-{seed}"),
        "kill.test",
        40_000 + seed as usize * 1_000,
        4_000,
    );
    b.resource(ResourceSpec::css(0, 15_000, 300, 0.4));
    b.resource(ResourceSpec::js(0, 20_000, 1_000, 10_000));
    b.text_paint(8_000, 1.0);
    b.build()
}

/// The exact grid both processes build (2 strategies × 2 sites × 2 reps).
fn grid() -> SweepPlan {
    let p0 = site_page(0);
    let p1 = site_page(1);
    let push = push_all(&p0, &[]);
    SweepPlan::new().strategies(vec![Strategy::NoPush, push]).sites([p0, p1]).reps(2).seed(19)
}

/// Child role: journal two of the four cells, then SIGKILL ourselves.
/// Runs inside the `#[test]` harness of the re-spawned binary; if the
/// kill works this function never returns.
fn run_child(path: &str) {
    let _ = grid().kill_after_journaled(2).checkpoint(path);
    unreachable!("the child must die by SIGKILL before the sweep completes");
}

#[test]
fn sigkilled_sweep_resumes_byte_identical() {
    let path: PathBuf =
        std::env::temp_dir().join(format!("h2push-{}-resume-kill.journal", std::process::id()));
    if let Ok(p) = std::env::var(CHILD_ENV) {
        run_child(&p);
    }
    let _ = fs::remove_file(&path);

    // Re-run this very test binary as the child, filtered to this test so
    // the child reaches run_child() and nothing else.
    let exe = std::env::current_exe().expect("test binary path");
    let status = std::process::Command::new(exe)
        .arg("sigkilled_sweep_resumes_byte_identical")
        .arg("--test-threads=1")
        .env(CHILD_ENV, path.display().to_string())
        .status()
        .expect("spawn child sweep");

    // The child must have died by SIGKILL — not exited, not panicked.
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        assert_eq!(status.signal(), Some(9), "child was SIGKILLed mid-grid: {status:?}");
    }
    #[cfg(not(unix))]
    assert!(!status.success());

    // The orphaned journal holds exactly the two durable cells.
    let plan = grid();
    let partial = fs::metadata(&path).expect("journal survives the kill");
    assert!(partial.len() > 0);

    let resumed = plan.resume(&path).expect("resume from the killed run's journal");
    assert_eq!(resumed.cells.len(), 4);
    assert!(resumed.is_complete());

    let baseline = plan.run();
    assert_eq!(
        resumed.canonical_bytes(),
        baseline.canonical_bytes(),
        "SIGKILLed-then-resumed must be byte-identical to uninterrupted"
    );
    fs::remove_file(&path).ok();
}
