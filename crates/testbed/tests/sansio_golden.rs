//! Refactor-equality net for the sans-IO split.
//!
//! Fingerprints (FNV-1a over canonical renderings) of every sim-facing
//! output the testbed produces — [`ReplayOutcome`]s across strategies,
//! modes, protocols and fault profiles, traced waterfall JSON/text, and
//! `SweepReport::canonical_bytes` — captured *before* the protocol core
//! was re-hosted on the sans-IO driver and asserted bit-identical ever
//! since. Any refactor of h2proto/h2server/browser/netsim/testbed that
//! changes a single observable byte of a sim-mode run fails here.
//!
//! Regenerate (only when an output change is *intended*):
//!
//! ```sh
//! H2PUSH_BLESS_GOLDEN=1 cargo test -p h2push-testbed --test sansio_golden
//! ```

use h2push_strategies::{push_all, Strategy};
use h2push_testbed::{FaultProfile, Mode, Protocol, ReplayConfig, RunPlan, SweepPlan};
use h2push_trace::WaterfallMeta;
use h2push_webmodel::{generate_site, CorpusKind, Page, PageBuilder, ResourceId, ResourceSpec};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

const GOLDEN_PATH: &str = "tests/golden/sansio.txt";

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// A deterministic multi-origin page exercising CSS/JS/image/third-party
/// paths (same shape as the replay unit tests).
fn hand_page() -> Page {
    let mut b = PageBuilder::new("golden", "golden.test", 60_000, 5_000);
    let third = b.origin("cdn.other.net", 1, false);
    b.resource(ResourceSpec::css(0, 20_000, 300, 0.3));
    b.resource(ResourceSpec::js(0, 25_000, 1_000, 30_000));
    b.resource(ResourceSpec::image(0, 40_000, 20_000, true, 2.0));
    b.resource(ResourceSpec::js_async(third, 10_000, 30_000, 5_000));
    b.text_paint(10_000, 1.0);
    b.text_paint(40_000, 1.0);
    b.build()
}

/// Canonical rendering of a full `RunReport`: Debug of every outcome (all
/// load metrics, request trace, push bytes, net counters) in rep order.
fn render_report(report: &h2push_testbed::RunReport) -> String {
    let mut s = String::new();
    for (i, out) in report.outcomes().enumerate() {
        let _ = writeln!(s, "rep {i}: {out:?}");
    }
    s
}

fn observed() -> BTreeMap<String, u64> {
    let mut map = BTreeMap::new();
    let mut put = |key: &str, canon: String| {
        map.insert(key.to_string(), fnv1a(canon.as_bytes()));
    };

    let hand = hand_page();
    let corpus = generate_site(CorpusKind::Random, 11);

    // Plain testbed replays, one per strategy family.
    let nopush = RunPlan::new(&hand).reps(3).seed(42).run();
    put("testbed_nopush", render_report(&nopush));
    let pushlist = RunPlan::new(&hand)
        .strategy(Strategy::PushList { order: vec![ResourceId(1), ResourceId(2)] })
        .reps(3)
        .seed(42)
        .run();
    put("testbed_pushlist", render_report(&pushlist));
    let inter = RunPlan::new(&hand)
        .strategy(Strategy::Interleaved {
            offset: 6_000,
            critical: vec![ResourceId(1)],
            after: vec![ResourceId(3)],
        })
        .reps(3)
        .seed(42)
        .run();
    put("testbed_interleaved", render_report(&inter));

    // Stochastic internet mode.
    let internet = RunPlan::new(&hand)
        .strategy(Strategy::PushList { order: vec![ResourceId(1)] })
        .mode(Mode::Internet)
        .reps(3)
        .seed(7)
        .run();
    put("internet_pushlist", render_report(&internet));

    // 2 % Gilbert–Elliott loss with browser hardening.
    let faulted = RunPlan::new(&hand)
        .strategy(push_all(&hand, &[]))
        .faults(FaultProfile::gilbert_elliott(0.02))
        .reps(3)
        .seed(9)
        .run();
    put("ge2_pushall", render_report(&faulted));

    // HTTP/1.1 baseline protocol.
    let mut h1cfg = ReplayConfig::testbed(Strategy::NoPush);
    h1cfg.protocol = Protocol::H1;
    let h1 = RunPlan::new(&hand).config(h1cfg).reps(2).run();
    put("h1_baseline", render_report(&h1));

    // A generated corpus site end to end.
    let corpus_run = RunPlan::new(&corpus).strategy(push_all(&corpus, &[])).reps(2).seed(3).run();
    put("corpus_pushall", render_report(&corpus_run));

    // Traced run: the full per-stream timeline rendered as waterfall
    // JSON + text (covers frame events, scheduler picks, CRP milestones).
    let traced = RunPlan::new(&hand)
        .strategy(Strategy::PushList { order: vec![ResourceId(1), ResourceId(2)] })
        .traced()
        .run_one()
        .expect("traced golden rep completes");
    let tl = traced.timeline.expect("traced");
    let meta = WaterfallMeta { site: &hand.name, strategy: "push-list", seed: 0 };
    let names = |id: usize| hand.resources.get(id).map(|r| r.path.clone());
    put("waterfall_json", tl.waterfall_json(&meta, &names));
    put("waterfall_text", tl.waterfall_text(&meta, &names));

    // Traced run under faults (drop/retransmit events in the timeline).
    let traced_ge = RunPlan::new(&hand)
        .faults(FaultProfile::gilbert_elliott(0.02))
        .seed(5)
        .traced()
        .run_one()
        .expect("faulted traced rep completes");
    let tl = traced_ge.timeline.expect("traced");
    let meta = WaterfallMeta { site: &hand.name, strategy: "no-push", seed: 5 };
    put("waterfall_ge2_json", tl.waterfall_json(&meta, &names));

    // Sweep grids: retained + streaming aggregation, fault-free + faulted.
    let grid = || {
        SweepPlan::new()
            .strategies([
                Strategy::NoPush,
                Strategy::PushList { order: vec![ResourceId(1), ResourceId(2)] },
            ])
            .site(&hand)
            .site(&corpus)
            .reps(2)
            .seed(21)
    };
    put("sweep_retained", hex(&grid().run().canonical_bytes()));
    put("sweep_streaming", hex(&grid().streaming().run().canonical_bytes()));
    put(
        "sweep_ge2",
        hex(&grid().faults(FaultProfile::gilbert_elliott(0.02)).run().canonical_bytes()),
    );

    map
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(s, "{b:02x}");
    }
    s
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH)
}

#[test]
fn sim_outputs_match_pre_refactor_goldens() {
    let observed = observed();
    if std::env::var("H2PUSH_BLESS_GOLDEN").is_ok() {
        let mut out = String::from(
            "# FNV-1a fingerprints of sim-mode outputs; regenerate with\n\
             # H2PUSH_BLESS_GOLDEN=1 cargo test -p h2push-testbed --test sansio_golden\n",
        );
        for (k, v) in &observed {
            let _ = writeln!(out, "{k} {v:016x}");
        }
        std::fs::create_dir_all(golden_path().parent().unwrap()).unwrap();
        std::fs::write(golden_path(), out).unwrap();
        eprintln!("blessed {} goldens to {}", observed.len(), golden_path().display());
        return;
    }
    let text = std::fs::read_to_string(golden_path())
        .expect("golden file missing — run with H2PUSH_BLESS_GOLDEN=1 to create it");
    let mut golden = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (k, v) = line.split_once(' ').expect("golden line format");
        golden.insert(k.to_string(), u64::from_str_radix(v, 16).expect("golden hash"));
    }
    let golden_keys: Vec<_> = golden.keys().collect();
    let observed_keys: Vec<_> = observed.keys().collect();
    assert_eq!(golden_keys, observed_keys, "golden case set drifted");
    for (k, v) in &observed {
        assert_eq!(
            golden[k], *v,
            "output `{k}` changed: golden {:016x} vs observed {v:016x} — a refactor \
             altered sim-mode bytes",
            golden[k]
        );
    }
}
