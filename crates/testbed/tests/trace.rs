//! The PR's acceptance gates, end to end through the public API:
//!
//! 1. `RunPlan` with no trace sink reproduces the PR-1/PR-2 entry points
//!    byte-identically (asserted against the raw `run_config` +
//!    `replay_shared` loop).
//! 2. Attaching a trace sink never perturbs the simulation: traced and
//!    untraced runs of the same seed agree on every output, with and
//!    without injected faults.
//! 3. Traces are deterministic: two traced runs of the same seed produce
//!    bit-identical `Timeline`s and waterfall JSON, including under a
//!    seeded Gilbert–Elliott fault profile.

use h2push_strategies::{push_all, Strategy};
use h2push_testbed::{
    replay_shared, run_config, strategy_label, FaultProfile, Mode, ReplayInputs, ReplayOutcome,
    RunPlan,
};
use h2push_trace::{Timeline, WaterfallMeta};
use h2push_webmodel::{generate_site, CorpusKind};

fn site(seed: u64) -> ReplayInputs {
    ReplayInputs::from(generate_site(CorpusKind::Random, seed))
}

fn assert_outcomes_identical(a: &ReplayOutcome, b: &ReplayOutcome, what: &str) {
    assert_eq!(a.load, b.load, "{what}: load diverged");
    assert_eq!(a.trace.order, b.trace.order, "{what}: request order diverged");
    assert_eq!(a.server_pushed_bytes, b.server_pushed_bytes, "{what}: push bytes diverged");
    assert_eq!(a.net, b.net, "{what}: net stats diverged");
}

#[test]
fn untraced_runplan_reproduces_the_old_entry_points_byte_identically() {
    let inputs = site(21);
    let strategy = std::sync::Arc::new(push_all(&inputs.page, &[]));
    let (reps, seed) = (4usize, 17u64);

    // The raw PR-1 loop: run_config + replay_shared per rep.
    let raw: Vec<ReplayOutcome> = (0..reps)
        .filter_map(|r| {
            let cfg =
                run_config(&strategy, Mode::Testbed, seed.wrapping_add(r as u64), &inputs.page);
            replay_shared(&inputs, &cfg).ok()
        })
        .collect();

    let plan =
        RunPlan::new(&inputs).strategy(strategy.clone()).mode(Mode::Testbed).reps(reps).seed(seed);
    let via_plan = plan.clone().run().into_outcomes();
    assert_eq!(raw.len(), via_plan.len());
    for (a, b) in raw.iter().zip(&via_plan) {
        assert_outcomes_identical(a, b, "raw loop vs RunPlan");
    }
}

#[test]
fn tracing_never_perturbs_the_simulation() {
    let inputs = site(33);
    for strategy in [Strategy::NoPush, push_all(&inputs.page, &[])] {
        let plan = RunPlan::new(&inputs).strategy(strategy.clone()).seed(5);
        let plain = plan.clone().run_one().unwrap();
        let traced = plan.traced().run_one().unwrap();
        assert!(plain.timeline.is_none());
        let tl = traced.timeline.expect("traced run records a timeline");
        assert!(!tl.is_empty(), "{}: empty timeline", strategy_label(&strategy));
        assert_outcomes_identical(&plain.outcome, &traced.outcome, strategy_label(&strategy));
    }
}

#[test]
fn tracing_never_perturbs_the_simulation_under_faults() {
    let inputs = site(33);
    let profile = FaultProfile::gilbert_elliott(0.02);
    let plan =
        RunPlan::new(&inputs).strategy(push_all(&inputs.page, &[])).seed(106).faults(profile);
    let plain = plan.clone().run_one().unwrap();
    let traced = plan.traced().run_one().unwrap();
    assert_outcomes_identical(&plain.outcome, &traced.outcome, "ge-2% faulted run");
    let tl = traced.timeline.unwrap();
    // The profile injected real loss and the trace saw it.
    assert_eq!(
        tl.count(|e| matches!(e, h2push_trace::TraceEvent::FaultDrop { .. })) as u64,
        plain.outcome.net.drops_total(),
        "trace drop count disagrees with net stats",
    );
}

fn traced_timeline(plan: &RunPlan) -> Timeline {
    plan.clone().traced().run_one().unwrap().timeline.unwrap()
}

#[test]
fn same_seed_traced_runs_are_bit_identical() {
    let inputs = site(8);
    let strategy = push_all(&inputs.page, &[]);
    let plan = RunPlan::new(&inputs).strategy(strategy.clone()).seed(7);
    let a = traced_timeline(&plan);
    let b = traced_timeline(&plan);
    assert_eq!(a, b, "same-seed timelines diverged");

    // Including the rendered exports.
    let meta =
        WaterfallMeta { site: &inputs.page.name, strategy: strategy_label(&strategy), seed: 7 };
    let names = |id: usize| inputs.page.resources.get(id).map(|r| r.path.clone());
    assert_eq!(a.waterfall_json(&meta, &names), b.waterfall_json(&meta, &names));
    assert_eq!(a.waterfall_text(&meta, &names), b.waterfall_text(&meta, &names));
}

#[test]
fn same_seed_traced_runs_are_bit_identical_under_a_seeded_fault_profile() {
    let inputs = site(8);
    let plan = RunPlan::new(&inputs)
        .strategy(push_all(&inputs.page, &[]))
        .seed(106)
        .faults(FaultProfile::gilbert_elliott(0.02));
    let a = traced_timeline(&plan);
    let b = traced_timeline(&plan);
    assert_eq!(a, b, "same-seed faulted timelines diverged");
    // A different seed must (on this profile) take a different path —
    // guards against the trace accidentally ignoring the fault layer.
    let c = traced_timeline(&plan.clone().seed(999));
    assert_ne!(a, c, "distinct seeds produced identical faulted timelines");
}

#[test]
fn traced_multi_rep_report_collects_one_timeline_per_rep() {
    let inputs = site(12);
    let report = RunPlan::new(&inputs).reps(3).seed(2).traced().run();
    assert_eq!(report.len(), 3);
    assert_eq!(report.timelines().count(), 3);
    // Parallel and serial traced execution agree timeline-for-timeline.
    let serial = RunPlan::new(&inputs).reps(3).seed(2).traced().serial().run();
    for (p, s) in report.timelines().zip(serial.timelines()) {
        assert_eq!(p, s, "parallel vs serial traced timelines diverged");
    }
}
