//! The typed event vocabulary of a replay.
//!
//! Every variant carries only primitives so events are `Copy` and the
//! off-path cost of building one is a handful of register moves. Ids come
//! from three namespaces: `conn: usize` is a netsim connection index,
//! `conn: u32` on endpoint events is the replay's `(group, slot)` label
//! (see `conn_label` in the testbed), and `resource: usize` indexes the
//! page's resource list.

/// Simulated time in microseconds since connection start.
pub type Micros = u64;

/// Stable endpoint-connection label from the replay's `(group, slot)`
/// pair: group in the high bits so labels sort by server group. Used by
/// both halves of a connection so client and server frames correlate.
pub fn conn_label(group: usize, slot: usize) -> u32 {
    ((group as u32) << 8) | (slot as u32 & 0xff)
}

/// Which endpoint of a connection emitted an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Role {
    Client,
    Server,
}

impl Role {
    pub fn label(self) -> &'static str {
        match self {
            Role::Client => "client",
            Role::Server => "server",
        }
    }
}

/// HTTP/2 frame types as they appear on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FrameKind {
    Data,
    Headers,
    Priority,
    RstStream,
    Settings,
    PushPromise,
    Ping,
    Goaway,
    WindowUpdate,
    Continuation,
    Unknown,
}

impl FrameKind {
    pub fn label(self) -> &'static str {
        match self {
            FrameKind::Data => "DATA",
            FrameKind::Headers => "HEADERS",
            FrameKind::Priority => "PRIORITY",
            FrameKind::RstStream => "RST_STREAM",
            FrameKind::Settings => "SETTINGS",
            FrameKind::PushPromise => "PUSH_PROMISE",
            FrameKind::Ping => "PING",
            FrameKind::Goaway => "GOAWAY",
            FrameKind::WindowUpdate => "WINDOW_UPDATE",
            FrameKind::Continuation => "CONTINUATION",
            FrameKind::Unknown => "UNKNOWN",
        }
    }
}

/// Why the network simulator dropped a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DropCause {
    /// Uniform Bernoulli loss from the link spec.
    Random,
    /// Injected fault model (Bernoulli or Gilbert–Elliott burst state).
    Fault,
    /// Bottleneck queue overflow.
    Queue,
    /// Link flap window.
    Flap,
}

impl DropCause {
    pub fn label(self) -> &'static str {
        match self {
            DropCause::Random => "random",
            DropCause::Fault => "fault",
            DropCause::Queue => "queue",
            DropCause::Flap => "flap",
        }
    }
}

/// One observation from somewhere in the stack.
///
/// Grouped bottom-up: transport events from netsim, frame/flow-control and
/// scheduler events from the HTTP/2 endpoints, push lifecycle from server
/// and browser, and page milestones from the browser's critical rendering
/// path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceEvent {
    // ---- netsim (conn = netsim connection index) ----
    /// Transport + TLS handshake finished; the connection is usable.
    Connected { conn: usize },
    /// A data packet was dropped, and why.
    FaultDrop { conn: usize, cause: DropCause },
    /// A retransmission timer fired and the lost head was resent.
    Retransmit { conn: usize },

    // ---- HTTP/2 endpoints (conn = replay (group, slot) label) ----
    /// A frame was encoded onto the wire by `role`.
    FrameSent { conn: u32, role: Role, stream: u32, kind: FrameKind, bytes: u32, end_stream: bool },
    /// A frame was parsed off the wire by `role`.
    FrameReceived { conn: u32, role: Role, stream: u32, kind: FrameKind, bytes: u32 },
    /// A WINDOW_UPDATE was applied to the sender's budget (`stream` 0 is
    /// the connection window).
    WindowUpdate { conn: u32, role: Role, stream: u32, increment: u32 },
    /// The server scheduler elected `stream` for its next DATA chunk.
    SchedulerPick { conn: u32, stream: u32, bytes: u32 },
    /// Interleaving: the document stream was suspended at `offset` bytes.
    InterleaveSuspend { parent: u32, offset: u64 },
    /// Interleaving: the critical set drained; the document resumes.
    InterleaveResume { parent: u32 },

    // ---- server push lifecycle ----
    /// The server issued PUSH_PROMISE `promised` on `parent` for `resource`.
    PushPromised { conn: u32, parent: u32, promised: u32, resource: usize, critical: bool },

    // ---- browser ----
    /// The parser or preload scanner found a subresource.
    ResourceDiscovered { resource: usize },
    /// A request went out on `stream` of connection group `group`.
    RequestSent { resource: usize, group: usize, stream: u32 },
    /// A pushed stream was matched to a needed resource and adopted.
    PushAccepted { resource: usize, group: usize, stream: u32 },
    /// A pushed stream was refused (duplicate, unknown, or cache-warm).
    PushCancelled { group: usize, stream: u32 },
    /// All response bytes for the resource arrived.
    ResourceLoaded { resource: usize },
    /// The resource finished evaluation (CSSOM built, script executed).
    ResourceEvaluated { resource: usize },
    /// The resource was abandoned after retries/timeouts.
    ResourceFailed { resource: usize },
    /// First pixels on screen.
    FirstPaint,
    /// DOM parsing complete, deferred scripts done.
    DomContentLoaded,
    /// The load event: every blocking resource settled.
    Onload,
    /// A connection attempt failed at the transport layer.
    ConnError { group: usize },

    // ---- adversarial-peer hardening ----
    /// An endpoint detected a resource-limit or flood violation; `fatal`
    /// distinguishes GOAWAY (connection dies) from RST (stream dies).
    LimitViolation { conn: u32, role: Role, stream: u32, fatal: bool },
    /// The replay watchdog tripped: the netsim loop exceeded its
    /// event-count budget and the run was aborted.
    WatchdogFired { events: u64 },
}

impl TraceEvent {
    /// Stable kebab-case tag for rendering and JSON export.
    pub fn kind_label(&self) -> &'static str {
        match self {
            TraceEvent::Connected { .. } => "connected",
            TraceEvent::FaultDrop { .. } => "fault-drop",
            TraceEvent::Retransmit { .. } => "retransmit",
            TraceEvent::FrameSent { .. } => "frame-sent",
            TraceEvent::FrameReceived { .. } => "frame-received",
            TraceEvent::WindowUpdate { .. } => "window-update",
            TraceEvent::SchedulerPick { .. } => "scheduler-pick",
            TraceEvent::InterleaveSuspend { .. } => "interleave-suspend",
            TraceEvent::InterleaveResume { .. } => "interleave-resume",
            TraceEvent::PushPromised { .. } => "push-promised",
            TraceEvent::ResourceDiscovered { .. } => "resource-discovered",
            TraceEvent::RequestSent { .. } => "request-sent",
            TraceEvent::PushAccepted { .. } => "push-accepted",
            TraceEvent::PushCancelled { .. } => "push-cancelled",
            TraceEvent::ResourceLoaded { .. } => "resource-loaded",
            TraceEvent::ResourceEvaluated { .. } => "resource-evaluated",
            TraceEvent::ResourceFailed { .. } => "resource-failed",
            TraceEvent::FirstPaint => "first-paint",
            TraceEvent::DomContentLoaded => "dom-content-loaded",
            TraceEvent::Onload => "onload",
            TraceEvent::ConnError { .. } => "conn-error",
            TraceEvent::LimitViolation { .. } => "limit-violation",
            TraceEvent::WatchdogFired { .. } => "watchdog-fired",
        }
    }
}
