//! The handle every subsystem holds, and the sinks it feeds.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when off.** The default handle is `None`; `emit` is one
//!    branch. Components embed a handle unconditionally so no constructor
//!    signatures change.
//! 2. **Determinism.** A handle never supplies entropy or timing to the
//!    simulation — it only *observes*. The sink sees events in emission
//!    order with caller-provided timestamps.
//! 3. **One clock, many emitters.** netsim and the browser know the
//!    simulated `now` at every emission site and use [`TraceHandle::emit_at`].
//!    The HTTP/2 endpoints do not (frame encoding has no time parameter),
//!    so the replay loop publishes the simulation clock into the handle
//!    with [`TraceHandle::set_now`] and endpoints stamp with
//!    [`TraceHandle::emit`].
//!
//! Handles are `Rc`-shared and deliberately `!Send`: a traced replay is a
//! single-threaded affair. Untraced replays (handle off) remain freely
//! parallelizable.

use crate::event::{Micros, TraceEvent};
use crate::timeline::Timeline;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Receives stamped events in emission order.
pub trait TraceSink {
    fn record(&mut self, at: Micros, ev: TraceEvent);
}

/// A sink that appends into a shared [`Timeline`], which the caller keeps
/// a second `Rc` to and inspects after the run.
pub struct SharedTimeline(pub Rc<RefCell<Timeline>>);

impl TraceSink for SharedTimeline {
    fn record(&mut self, at: Micros, ev: TraceEvent) {
        self.0.borrow_mut().push(at, ev);
    }
}

/// Where a handle delivers events. The timeline variant is the hot path:
/// an emission is one `RefCell` borrow and a `Vec` push of a `Copy` pair —
/// no box, no virtual dispatch, no serialization. Arbitrary sinks keep the
/// `dyn` route for extensibility (file writers, assertion probes).
enum Sink {
    Timeline(Rc<RefCell<Timeline>>),
    Dyn(RefCell<Box<dyn TraceSink>>),
}

impl Sink {
    #[inline]
    fn record(&self, at: Micros, ev: TraceEvent) {
        match self {
            Sink::Timeline(tl) => tl.borrow_mut().push(at, ev),
            Sink::Dyn(sink) => sink.borrow_mut().record(at, ev),
        }
    }
}

struct Ctl {
    now: Cell<Micros>,
    sink: Sink,
}

/// A cheap, cloneable capability to emit trace events.
///
/// `TraceHandle::default()` (or [`TraceHandle::off`]) is the disabled
/// handle: every operation is a no-op.
#[derive(Clone, Default)]
pub struct TraceHandle(Option<Rc<Ctl>>);

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() { "TraceHandle(on)" } else { "TraceHandle(off)" })
    }
}

impl TraceHandle {
    /// The disabled handle — all emissions are single-branch no-ops.
    pub fn off() -> Self {
        Self(None)
    }

    /// A handle feeding `sink` through dynamic dispatch. For timeline
    /// recording prefer [`recording`], which takes the devirtualized path.
    pub fn with_sink(sink: Box<dyn TraceSink>) -> Self {
        Self(Some(Rc::new(Ctl { now: Cell::new(0), sink: Sink::Dyn(RefCell::new(sink)) })))
    }

    /// A handle appending straight into `timeline` — no boxed sink in
    /// between, so each event is a branch, a borrow and a `Vec` push.
    pub fn with_timeline(timeline: Rc<RefCell<Timeline>>) -> Self {
        Self(Some(Rc::new(Ctl { now: Cell::new(0), sink: Sink::Timeline(timeline) })))
    }

    /// Is a sink attached?
    pub fn is_on(&self) -> bool {
        self.0.is_some()
    }

    /// Publish the simulation clock for emitters without a time parameter.
    pub fn set_now(&self, micros: Micros) {
        if let Some(ctl) = &self.0 {
            ctl.now.set(micros);
        }
    }

    /// Emit stamped with the published clock (see [`TraceHandle::set_now`]).
    pub fn emit(&self, ev: TraceEvent) {
        if let Some(ctl) = &self.0 {
            ctl.sink.record(ctl.now.get(), ev);
        }
    }

    /// Emit stamped with an explicit simulated time.
    pub fn emit_at(&self, micros: Micros, ev: TraceEvent) {
        if let Some(ctl) = &self.0 {
            ctl.sink.record(micros, ev);
        }
    }
}

/// A recording handle plus the shared [`Timeline`] it fills.
///
/// The returned handle is cloned into the simulation; the caller keeps the
/// `Rc` and reads (or `take`s) the timeline once the run finishes.
pub fn recording() -> (TraceHandle, Rc<RefCell<Timeline>>) {
    // Pre-size for a typical traced page replay (a few thousand frame,
    // timer and paint events) so recording never reallocates mid-run.
    let timeline = Rc::new(RefCell::new(Timeline::with_capacity(4096)));
    let handle = TraceHandle::with_timeline(Rc::clone(&timeline));
    (handle, timeline)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_records_nothing_and_is_default() {
        let h = TraceHandle::default();
        assert!(!h.is_on());
        h.set_now(5);
        h.emit(TraceEvent::Onload);
        h.emit_at(9, TraceEvent::FirstPaint);
        // Nothing observable — the point is simply that this compiles to
        // no-ops and doesn't panic.
        let h2 = TraceHandle::off();
        assert!(!h2.is_on());
    }

    #[test]
    fn recording_handle_stamps_with_shared_clock() {
        let (h, tl) = recording();
        assert!(h.is_on());
        h.set_now(100);
        h.emit(TraceEvent::FirstPaint);
        h.set_now(250);
        h.emit(TraceEvent::Onload);
        h.emit_at(175, TraceEvent::DomContentLoaded);
        let tl = tl.borrow();
        assert_eq!(
            tl.events(),
            &[
                (100, TraceEvent::FirstPaint),
                (250, TraceEvent::Onload),
                (175, TraceEvent::DomContentLoaded),
            ]
        );
    }

    #[test]
    fn clones_share_one_sink() {
        let (h, tl) = recording();
        let h2 = h.clone();
        h.set_now(1);
        h.emit(TraceEvent::FirstPaint);
        h2.emit(TraceEvent::Onload); // clock shared too
        assert_eq!(tl.borrow().len(), 2);
        assert_eq!(tl.borrow().events()[1], (1, TraceEvent::Onload));
    }
}
