//! # h2push-trace — deterministic replay observability
//!
//! A zero-cost-when-off trace layer for the deterministic replay testbed.
//! Every subsystem (netsim, h2proto, h2server, browser) holds a cheap
//! [`TraceHandle`]; when the handle is off — the default — each emission
//! site costs one branch on an `Option` and nothing else. When a sink is
//! attached, typed [`TraceEvent`]s are stamped with simulated microseconds
//! and recorded in emission order.
//!
//! Because the simulator is fully deterministic, two traced runs of the
//! same seed produce **bit-identical** [`Timeline`]s, and attaching a sink
//! never perturbs the simulation: no RNG draws, no reordering, no timing
//! feedback. The timeline can render a per-resource waterfall (text and
//! JSON) and per-stream byte accounting.
//!
//! This crate sits at the bottom of the dependency stack on purpose: it
//! has no dependencies and speaks only primitives (`u64` microseconds,
//! `u32` stream ids, `usize` resource/connection indices). Mapping ids to
//! names is the caller's business via [`NameResolver`].

mod event;
mod handle;
mod timeline;
mod waterfall;

pub use event::{conn_label, DropCause, FrameKind, Micros, Role, TraceEvent};
pub use handle::{recording, SharedTimeline, TraceHandle, TraceSink};
pub use timeline::{ResourceSpan, StreamBytes, Timeline};
pub use waterfall::{NameResolver, WaterfallMeta};
