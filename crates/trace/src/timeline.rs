//! The per-run event log and its derived summaries.

use crate::event::{FrameKind, Micros, Role, TraceEvent};

/// Everything one traced replay emitted, in emission order.
///
/// Equality is exact (`Eq`): two timelines compare equal only if every
/// event and every timestamp matches bit for bit, which is the determinism
/// contract the test suite asserts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timeline {
    events: Vec<(Micros, TraceEvent)>,
}

/// Per-stream byte accounting derived from server-side DATA frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamBytes {
    /// Replay connection label the stream lives on.
    pub conn: u32,
    pub stream: u32,
    /// Total DATA payload bytes the server emitted on the stream.
    pub data_bytes: u64,
    /// Number of DATA frames.
    pub data_frames: u32,
    /// When the server set END_STREAM, if traced.
    pub closed_at: Option<Micros>,
}

/// Per-resource lifecycle extracted from browser events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceSpan {
    pub resource: usize,
    pub discovered: Option<Micros>,
    /// When the request (or push adoption) went on the wire.
    pub requested: Option<Micros>,
    pub loaded: Option<Micros>,
    pub evaluated: Option<Micros>,
    /// Arrived via server push rather than a client request.
    pub pushed: bool,
    pub failed: bool,
    /// HTTP/2 stream carrying the response, if known.
    pub stream: Option<u32>,
}

impl Timeline {
    /// An empty timeline with room for `cap` events before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Timeline { events: Vec::with_capacity(cap) }
    }

    /// Drop all events but keep the allocation, so a recycled timeline
    /// records the next run without reallocating.
    pub fn reset(&mut self) {
        self.events.clear();
    }

    pub fn push(&mut self, at: Micros, ev: TraceEvent) {
        self.events.push((at, ev));
    }

    pub fn events(&self) -> &[(Micros, TraceEvent)] {
        &self.events
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Count events matching a predicate.
    pub fn count(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|(_, ev)| pred(ev)).count()
    }

    /// Server-side DATA byte accounting per `(conn, stream)`, sorted.
    pub fn stream_accounting(&self) -> Vec<StreamBytes> {
        let mut rows: Vec<StreamBytes> = Vec::new();
        for &(at, ev) in &self.events {
            if let TraceEvent::FrameSent {
                conn,
                role: Role::Server,
                stream,
                kind: FrameKind::Data,
                bytes,
                end_stream,
            } = ev
            {
                let row = match rows.iter_mut().find(|r| r.conn == conn && r.stream == stream) {
                    Some(r) => r,
                    None => {
                        rows.push(StreamBytes {
                            conn,
                            stream,
                            data_bytes: 0,
                            data_frames: 0,
                            closed_at: None,
                        });
                        rows.last_mut().expect("just pushed")
                    }
                };
                row.data_bytes += bytes as u64;
                row.data_frames += 1;
                if end_stream {
                    row.closed_at.get_or_insert(at);
                }
            }
        }
        rows.sort_by_key(|r| (r.conn, r.stream));
        rows
    }

    /// Per-resource lifecycle rows, sorted by resource id.
    ///
    /// First-write-wins per field, mirroring the browser's own
    /// `ResourceTiming` semantics (retries never rewind a milestone).
    pub fn resource_spans(&self) -> Vec<ResourceSpan> {
        let mut rows: Vec<ResourceSpan> = Vec::new();
        let row = |rows: &mut Vec<ResourceSpan>, id: usize| -> usize {
            match rows.iter().position(|r| r.resource == id) {
                Some(i) => i,
                None => {
                    rows.push(ResourceSpan { resource: id, ..Default::default() });
                    rows.len() - 1
                }
            }
        };
        for &(at, ev) in &self.events {
            match ev {
                TraceEvent::ResourceDiscovered { resource } => {
                    let i = row(&mut rows, resource);
                    rows[i].discovered.get_or_insert(at);
                }
                TraceEvent::RequestSent { resource, stream, .. } => {
                    let i = row(&mut rows, resource);
                    rows[i].requested.get_or_insert(at);
                    if rows[i].stream.is_none() {
                        rows[i].stream = Some(stream);
                    }
                }
                TraceEvent::PushAccepted { resource, stream, .. } => {
                    let i = row(&mut rows, resource);
                    rows[i].requested.get_or_insert(at);
                    rows[i].pushed = true;
                    rows[i].stream = Some(stream);
                }
                TraceEvent::ResourceLoaded { resource } => {
                    let i = row(&mut rows, resource);
                    rows[i].loaded.get_or_insert(at);
                }
                TraceEvent::ResourceEvaluated { resource } => {
                    let i = row(&mut rows, resource);
                    rows[i].evaluated.get_or_insert(at);
                }
                TraceEvent::ResourceFailed { resource } => {
                    let i = row(&mut rows, resource);
                    rows[i].failed = true;
                }
                _ => {}
            }
        }
        rows.sort_by_key(|r| r.resource);
        rows
    }

    /// Timestamp of the first event matching `pred`.
    pub fn first_at(&self, pred: impl Fn(&TraceEvent) -> bool) -> Option<Micros> {
        self.events.iter().find(|(_, ev)| pred(ev)).map(|&(at, _)| at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DropCause, FrameKind, Role, TraceEvent};

    fn data(conn: u32, stream: u32, bytes: u32, end: bool) -> TraceEvent {
        TraceEvent::FrameSent {
            conn,
            role: Role::Server,
            stream,
            kind: FrameKind::Data,
            bytes,
            end_stream: end,
        }
    }

    #[test]
    fn stream_accounting_sums_server_data_only() {
        let mut tl = Timeline::default();
        tl.push(10, data(0, 1, 1000, false));
        tl.push(20, data(0, 2, 300, true));
        tl.push(30, data(0, 1, 460, true));
        // Client-role and non-DATA frames are ignored.
        tl.push(
            35,
            TraceEvent::FrameSent {
                conn: 0,
                role: Role::Client,
                stream: 1,
                kind: FrameKind::Data,
                bytes: 99,
                end_stream: false,
            },
        );
        tl.push(
            40,
            TraceEvent::FrameSent {
                conn: 0,
                role: Role::Server,
                stream: 1,
                kind: FrameKind::Headers,
                bytes: 50,
                end_stream: false,
            },
        );
        let rows = tl.stream_accounting();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0],
            StreamBytes {
                conn: 0,
                stream: 1,
                data_bytes: 1460,
                data_frames: 2,
                closed_at: Some(30),
            }
        );
        assert_eq!(rows[1].data_bytes, 300);
        assert_eq!(rows[1].closed_at, Some(20));
    }

    #[test]
    fn resource_spans_are_first_write_wins_and_sorted() {
        let mut tl = Timeline::default();
        tl.push(5, TraceEvent::ResourceDiscovered { resource: 2 });
        tl.push(6, TraceEvent::RequestSent { resource: 2, group: 0, stream: 3 });
        tl.push(7, TraceEvent::PushAccepted { resource: 1, group: 0, stream: 2 });
        tl.push(9, TraceEvent::ResourceLoaded { resource: 1 });
        tl.push(11, TraceEvent::ResourceLoaded { resource: 2 });
        tl.push(12, TraceEvent::ResourceLoaded { resource: 2 }); // retry echo: ignored
        tl.push(13, TraceEvent::ResourceEvaluated { resource: 2 });
        let rows = tl.resource_spans();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].resource, 1);
        assert!(rows[0].pushed);
        assert_eq!(rows[0].requested, Some(7));
        assert_eq!(rows[0].stream, Some(2));
        assert_eq!(rows[1].resource, 2);
        assert!(!rows[1].pushed);
        assert_eq!(rows[1].loaded, Some(11));
        assert_eq!(rows[1].evaluated, Some(13));
    }

    #[test]
    fn count_and_first_at_filter_events() {
        let mut tl = Timeline::default();
        tl.push(1, TraceEvent::FaultDrop { conn: 0, cause: DropCause::Fault });
        tl.push(2, TraceEvent::Retransmit { conn: 0 });
        tl.push(3, TraceEvent::FaultDrop { conn: 1, cause: DropCause::Queue });
        assert_eq!(tl.count(|e| matches!(e, TraceEvent::FaultDrop { .. })), 2);
        assert_eq!(tl.first_at(|e| matches!(e, TraceEvent::Retransmit { .. })), Some(2));
        assert_eq!(tl.first_at(|e| matches!(e, TraceEvent::Onload)), None);
    }
}
