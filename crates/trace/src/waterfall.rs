//! Waterfall rendering: a timeline as a per-resource table (text) and a
//! machine-readable export (JSON, schema in `results/waterfall.schema.json`).
//!
//! JSON is written by hand — the export is flat and the crate stays
//! dependency-free. Output is deterministic: rows are sorted by resource
//! id, streams by `(conn, stream)`, and all numbers are integers.

use crate::event::TraceEvent;
use crate::timeline::Timeline;

/// Maps a resource id to a display name; `None` renders as `res<N>`.
pub type NameResolver<'a> = &'a dyn Fn(usize) -> Option<String>;

/// Run identification stamped into every export.
pub struct WaterfallMeta<'a> {
    pub site: &'a str,
    /// Stable strategy label (use `strategy_label` from the testbed).
    pub strategy: &'a str,
    pub seed: u64,
}

fn name_of(names: NameResolver<'_>, id: usize) -> String {
    names(id).unwrap_or_else(|| format!("res{id}"))
}

impl Timeline {
    /// A human-readable waterfall table.
    pub fn waterfall_text(&self, meta: &WaterfallMeta<'_>, names: NameResolver<'_>) -> String {
        let ms = |t: Option<u64>| match t {
            Some(us) => format!("{:.1}", us as f64 / 1000.0),
            None => "-".into(),
        };
        let mut out = format!(
            "waterfall: site={} strategy={} seed={} ({} events)\n",
            meta.site,
            meta.strategy,
            meta.seed,
            self.len()
        );
        out.push_str(&format!(
            "{:<24} {:>6} {:>9} {:>9} {:>9} {:>9} {:>5}\n",
            "resource", "stream", "disc ms", "req ms", "load ms", "eval ms", "push"
        ));
        for r in self.resource_spans() {
            out.push_str(&format!(
                "{:<24} {:>6} {:>9} {:>9} {:>9} {:>9} {:>5}{}\n",
                name_of(names, r.resource),
                r.stream.map(|s| s.to_string()).unwrap_or_else(|| "-".into()),
                ms(r.discovered),
                ms(r.requested),
                ms(r.loaded),
                ms(r.evaluated),
                if r.pushed { "yes" } else { "" },
                if r.failed { "  FAILED" } else { "" },
            ));
        }
        let streams = self.stream_accounting();
        if !streams.is_empty() {
            out.push_str("per-stream bytes (server DATA):\n");
            for s in streams {
                out.push_str(&format!(
                    "  conn {} stream {:>3}: {:>8} B in {:>3} frames, closed {}\n",
                    s.conn,
                    s.stream,
                    s.data_bytes,
                    s.data_frames,
                    ms(s.closed_at)
                ));
            }
        }
        let drops = self.count(|e| matches!(e, TraceEvent::FaultDrop { .. }));
        let rto = self.count(|e| matches!(e, TraceEvent::Retransmit { .. }));
        if drops + rto > 0 {
            out.push_str(&format!("faults: {drops} drops, {rto} retransmits\n"));
        }
        out
    }

    /// The JSON export, matching `results/waterfall.schema.json`.
    pub fn waterfall_json(&self, meta: &WaterfallMeta<'_>, names: NameResolver<'_>) -> String {
        let opt = |t: Option<u64>| t.map(|v| v.to_string()).unwrap_or_else(|| "null".into());
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"site\": {},\n", json_str(meta.site)));
        out.push_str(&format!("  \"strategy\": {},\n", json_str(meta.strategy)));
        out.push_str(&format!("  \"seed\": {},\n", meta.seed));
        out.push_str(&format!("  \"events\": {},\n", self.len()));
        out.push_str("  \"resources\": [\n");
        let rows = self.resource_spans();
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\": {}, \"name\": {}, \"discovered_us\": {}, \"requested_us\": {}, \
                 \"loaded_us\": {}, \"evaluated_us\": {}, \"pushed\": {}, \"failed\": {}, \
                 \"stream\": {}}}{}\n",
                r.resource,
                json_str(&name_of(names, r.resource)),
                opt(r.discovered),
                opt(r.requested),
                opt(r.loaded),
                opt(r.evaluated),
                r.pushed,
                r.failed,
                r.stream.map(|s| s.to_string()).unwrap_or_else(|| "null".into()),
                if i + 1 < rows.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"streams\": [\n");
        let streams = self.stream_accounting();
        for (i, s) in streams.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"conn\": {}, \"stream\": {}, \"data_bytes\": {}, \"data_frames\": {}, \
                 \"closed_us\": {}}}{}\n",
                s.conn,
                s.stream,
                s.data_bytes,
                s.data_frames,
                opt(s.closed_at),
                if i + 1 < streams.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"milestones\": {{\"first_paint_us\": {}, \"dom_content_loaded_us\": {}, \
             \"onload_us\": {}}},\n",
            opt(self.first_at(|e| matches!(e, TraceEvent::FirstPaint))),
            opt(self.first_at(|e| matches!(e, TraceEvent::DomContentLoaded))),
            opt(self.first_at(|e| matches!(e, TraceEvent::Onload))),
        ));
        out.push_str(&format!(
            "  \"faults\": {{\"drops\": {}, \"retransmits\": {}}}\n",
            self.count(|e| matches!(e, TraceEvent::FaultDrop { .. })),
            self.count(|e| matches!(e, TraceEvent::Retransmit { .. })),
        ));
        out.push_str("}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Timeline {
        let mut tl = Timeline::default();
        tl.push(0, TraceEvent::ResourceDiscovered { resource: 0 });
        tl.push(10, TraceEvent::RequestSent { resource: 0, group: 0, stream: 1 });
        tl.push(500, TraceEvent::ResourceLoaded { resource: 0 });
        tl.push(900, TraceEvent::FirstPaint);
        tl.push(1000, TraceEvent::Onload);
        tl
    }

    #[test]
    fn text_render_names_resources_and_milestones() {
        let tl = sample();
        let meta = WaterfallMeta { site: "s1", strategy: "no-push", seed: 7 };
        let txt = tl.waterfall_text(&meta, &|id| (id == 0).then(|| "/index.html".into()));
        assert!(txt.contains("/index.html"));
        assert!(txt.contains("site=s1 strategy=no-push seed=7"));
    }

    #[test]
    fn json_render_is_deterministic_and_escapes() {
        let tl = sample();
        let meta = WaterfallMeta { site: "a\"b", strategy: "no-push", seed: 7 };
        let a = tl.waterfall_json(&meta, &|_| None);
        let b = tl.waterfall_json(&meta, &|_| None);
        assert_eq!(a, b);
        assert!(a.contains("\"a\\\"b\""));
        assert!(a.contains("\"onload_us\": 1000"));
        assert!(a.contains("\"name\": \"res0\""));
    }
}
