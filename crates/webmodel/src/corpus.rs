//! Seeded random website corpora (§4.2).
//!
//! The paper draws two disjoint 100-site sets from the Alexa list: one from
//! the top 500 ("top-100") and one from the full top 1M ("random-100"), and
//! additionally replays 100 push-using sites for the testbed validation
//! (Fig. 2). We cannot fetch the 2018 pages, so this module generates
//! *structurally calibrated* sites from a seed:
//!
//! * object counts, sizes and type mixes follow log-normal-ish
//!   distributions in the ranges reported by web measurement studies of the
//!   era (the paper cites \[13, 16\] on complexity and third-party share);
//! * the *pushable fraction* per site is calibrated so that ~52 % of
//!   top-100 sites and ~24 % of random-100 sites have < 20 % pushable
//!   objects — the paper's §4.2 "Pushable Objects" statistic;
//! * push-using sites carry a `recorded_push` list of heterogeneous quality
//!   (some push a sensible head set, some push images or everything),
//!   matching the paper's observation that real deployments often push
//!   suboptimally.
//!
//! Everything is deterministic given `(kind, seed)`.

use crate::page::Page;
use crate::types::{
    Discovery, InlineScript, Origin, Resource, ResourceId, ResourceType, ScriptMode, TextPaint,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which population a site is drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusKind {
    /// Alexa top 500: large, complex, third-party heavy.
    Top,
    /// Alexa top 1M: smaller, more self-hosted.
    Random,
    /// Sites observed using Server Push (the Fig. 2 validation set):
    /// structurally like `Random` but always with a recorded push list.
    PushUsers,
}

fn lognormal(rng: &mut StdRng, median: f64, sigma: f64, lo: f64, hi: f64) -> f64 {
    // Box–Muller.
    let u1: f64 = rng.gen_range(1e-9..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (median * (sigma * z).exp()).clamp(lo, hi)
}

/// Generate one site deterministically from `(kind, seed)`.
pub fn generate_site(kind: CorpusKind, seed: u64) -> Page {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_0000 ^ kind_tag(kind));
    let name = format!("{}-{seed}", kind_label(kind));
    let host = format!("site{seed}.{}", kind_label(kind));

    // --- global shape ---------------------------------------------------
    let (obj_median, obj_lo, obj_hi) = match kind {
        CorpusKind::Top => (80.0, 20.0, 280.0),
        CorpusKind::Random | CorpusKind::PushUsers => (35.0, 5.0, 140.0),
    };
    let n_objects = lognormal(&mut rng, obj_median, 0.6, obj_lo, obj_hi) as usize;
    let html_size = lognormal(
        &mut rng,
        if kind == CorpusKind::Top { 45_000.0 } else { 28_000.0 },
        0.8,
        6_000.0,
        260_000.0,
    ) as usize;
    let head_end = (html_size / 12).clamp(800, 20_000).min(html_size / 2);

    // Pushable fraction, calibrated to the paper's §4.2 statistic.
    let p_low = match kind {
        CorpusKind::Top => 0.52,
        CorpusKind::Random | CorpusKind::PushUsers => 0.24,
    };
    let pushable_frac: f64 = if rng.gen_bool(p_low) {
        rng.gen_range(0.02..0.20)
    } else {
        match kind {
            CorpusKind::Top => rng.gen_range(0.20..0.75),
            _ => rng.gen_range(0.20..0.95),
        }
    };

    // CPU character of the page: multiplies JS execution times; some pages
    // are computation-bound (the paper's s5 / w5 cases).
    let cpu_factor: f64 = lognormal(&mut rng, 1.0, 0.5, 0.3, 4.0);

    // --- origins ----------------------------------------------------------
    // Group 0 is the site's own infrastructure; third parties get their own
    // groups (one group may host a couple of hosts).
    let n_third_groups = match kind {
        CorpusKind::Top => rng.gen_range(4..30usize),
        _ => rng.gen_range(1..12usize),
    };
    let mut origins = vec![Origin { host: host.clone(), server_group: 0, same_infra: true }];
    // A same-infra CDN host, coalesced with the main group (cf. §5
    // "img.bbystatic.com and bestbuy.com").
    origins.push(Origin { host: format!("static.{host}"), server_group: 0, same_infra: true });
    for g in 0..n_third_groups {
        origins.push(Origin {
            host: format!("third{g}.{}", ["ads.net", "cdn.io", "tag.org", "apis.com"][g % 4]),
            server_group: g + 1,
            same_infra: false,
        });
    }

    // --- the document -----------------------------------------------------
    let mut resources = vec![Resource {
        id: ResourceId(0),
        origin: 0,
        path: "/".into(),
        rtype: ResourceType::Html,
        size: html_size,
        exec_us: 0,
        discovery: Discovery::Html { offset: 0 },
        script_mode: ScriptMode::Blocking,
        render_blocking: false,
        above_fold: false,
        visual_weight: 0.0,
        critical_fraction: 0.0,
    }];

    let pick_origin = |rng: &mut StdRng, pushable: bool, origins: &[Origin]| -> usize {
        if pushable {
            if rng.gen_bool(0.6) {
                0
            } else {
                1
            }
        } else {
            rng.gen_range(2..origins.len().max(3)).min(origins.len() - 1)
        }
    };

    // Type mix per the measurement literature.
    let mut css_ids: Vec<ResourceId> = Vec::new();
    let mut js_ids: Vec<ResourceId> = Vec::new();
    for i in 0..n_objects {
        let roll: f64 = rng.gen();
        let rtype = if roll < 0.55 {
            ResourceType::Image
        } else if roll < 0.77 {
            ResourceType::Js
        } else if roll < 0.84 {
            ResourceType::Css
        } else if roll < 0.89 {
            ResourceType::Font
        } else {
            ResourceType::Other
        };
        let pushable = rng.gen_bool(pushable_frac);
        let origin = pick_origin(&mut rng, pushable, &origins);
        let id = ResourceId(resources.len());
        let r = match rtype {
            ResourceType::Css => {
                let size = lognormal(&mut rng, 16_000.0, 0.9, 1_200.0, 120_000.0) as usize;
                let offset = rng.gen_range(50..head_end);
                css_ids.push(id);
                Resource {
                    id,
                    origin,
                    path: format!("/css/{i}.css"),
                    rtype,
                    size,
                    exec_us: (size as u64 / 80).max(300),
                    discovery: Discovery::Html { offset },
                    script_mode: ScriptMode::Blocking,
                    render_blocking: true,
                    above_fold: true,
                    visual_weight: 0.0,
                    critical_fraction: rng.gen_range(0.08..0.5),
                }
            }
            ResourceType::Js => {
                let size = lognormal(&mut rng, 26_000.0, 0.9, 1_500.0, 250_000.0) as usize;
                let in_head = rng.gen_bool(0.35);
                let offset = if in_head {
                    rng.gen_range(50..head_end)
                } else {
                    rng.gen_range(head_end..html_size - 1)
                };
                let mode = match rng.gen_range(0..10) {
                    0..=4 => ScriptMode::Blocking,
                    5..=7 => ScriptMode::Async,
                    _ => ScriptMode::Defer,
                };
                js_ids.push(id);
                Resource {
                    id,
                    origin,
                    path: format!("/js/{i}.js"),
                    rtype,
                    size,
                    exec_us: ((size as f64 / 1000.0) * 400.0 * cpu_factor) as u64,
                    discovery: Discovery::Html { offset },
                    script_mode: mode,
                    render_blocking: false,
                    above_fold: false,
                    visual_weight: 0.0,
                    critical_fraction: 0.0,
                }
            }
            ResourceType::Image => {
                let size = lognormal(&mut rng, 15_000.0, 1.1, 800.0, 400_000.0) as usize;
                let offset = rng.gen_range(head_end..html_size - 1);
                let above_fold = rng.gen_bool(0.35);
                Resource {
                    id,
                    origin,
                    path: format!("/img/{i}.webp"),
                    rtype,
                    size,
                    exec_us: 300,
                    discovery: Discovery::Html { offset },
                    script_mode: ScriptMode::Blocking,
                    render_blocking: false,
                    above_fold,
                    visual_weight: if above_fold { rng.gen_range(0.4..3.0) } else { 0.0 },
                    critical_fraction: 0.0,
                }
            }
            ResourceType::Font => {
                let size = lognormal(&mut rng, 28_000.0, 0.5, 8_000.0, 90_000.0) as usize;
                // Fonts come from CSS when any exists, else from the head.
                let discovery = if let Some(&parent) = css_ids.last() {
                    Discovery::Css { parent }
                } else {
                    Discovery::Html { offset: rng.gen_range(50..head_end) }
                };
                Resource {
                    id,
                    origin,
                    path: format!("/font/{i}.woff2"),
                    rtype,
                    size,
                    exec_us: 200,
                    discovery,
                    script_mode: ScriptMode::Blocking,
                    render_blocking: false,
                    above_fold: true,
                    visual_weight: 0.4,
                    critical_fraction: 0.0,
                }
            }
            _ => {
                let size = lognormal(&mut rng, 6_000.0, 1.0, 300.0, 80_000.0) as usize;
                // A tenth of "other" resources hide behind scripts.
                let discovery = if !js_ids.is_empty() && rng.gen_bool(0.4) {
                    Discovery::Script { parent: js_ids[rng.gen_range(0..js_ids.len())] }
                } else {
                    Discovery::Html { offset: rng.gen_range(head_end..html_size - 1) }
                };
                Resource {
                    id,
                    origin,
                    path: format!("/api/{i}.json"),
                    rtype,
                    size,
                    exec_us: 100,
                    discovery,
                    script_mode: ScriptMode::Async,
                    render_blocking: false,
                    above_fold: false,
                    visual_weight: 0.0,
                    critical_fraction: 0.0,
                }
            }
        };
        resources.push(r);
    }

    // --- document paint points and inline scripts -------------------------
    let mut text_paints = Vec::new();
    let n_paints = rng.gen_range(3..8usize);
    for i in 0..n_paints {
        let offset = head_end + (html_size - head_end) * (i + 1) / (n_paints + 1);
        text_paints.push(TextPaint { offset, weight: rng.gen_range(0.5..2.0) });
    }
    let mut inline_scripts = Vec::new();
    for _ in 0..rng.gen_range(0..4usize) {
        inline_scripts.push(InlineScript {
            offset: rng.gen_range(head_end..html_size),
            exec_us: (lognormal(&mut rng, 4_000.0, 1.0, 300.0, 60_000.0) * cpu_factor) as u64,
            needs_cssom: rng.gen_bool(0.7),
        });
    }

    // --- the recorded (live) push configuration ---------------------------
    let mut recorded_push = Vec::new();
    let uses_push = kind == CorpusKind::PushUsers;
    if uses_push {
        // Real deployments vary wildly in quality (the paper's Fig. 2b):
        // some push a sensible critical set, some push images, some push
        // everything pushable.
        let pushable: Vec<ResourceId> = resources[1..]
            .iter()
            .filter(|r| origins[r.origin].server_group == 0)
            .map(|r| r.id)
            .collect();
        let style = rng.gen_range(0..3u8);
        for &id in &pushable {
            let r = &resources[id.0];
            let take = match style {
                0 => r.rtype == ResourceType::Css || r.rtype == ResourceType::Js, // sensible
                1 => true,                                                        // everything
                _ => rng.gen_bool(0.4),                                           // haphazard
            };
            if take {
                recorded_push.push(id);
            }
            if recorded_push.len() >= 25 {
                break;
            }
        }
        // A site observed pushing must actually push something: fall back
        // to its first pushable resource, creating one if the generator
        // left the main group empty.
        if recorded_push.is_empty() {
            if let Some(&first) = pushable.first() {
                recorded_push.push(first);
            } else if resources.len() > 1 {
                resources[1].origin = 0;
                recorded_push.push(resources[1].id);
            }
        }
    }

    let page =
        Page { name, resources, origins, text_paints, inline_scripts, head_end, recorded_push };
    debug_assert!(page.validate().is_ok(), "generated page invalid: {:?}", page.validate());
    page
}

/// Generate a whole set of `n` sites.
pub fn generate_set(kind: CorpusKind, n: usize, seed: u64) -> Vec<Page> {
    (0..n as u64).map(|i| generate_site(kind, seed.wrapping_mul(1000).wrapping_add(i))).collect()
}

fn kind_label(kind: CorpusKind) -> &'static str {
    match kind {
        CorpusKind::Top => "top",
        CorpusKind::Random => "random",
        CorpusKind::PushUsers => "pushuser",
    }
}

fn kind_tag(kind: CorpusKind) -> u64 {
    match kind {
        CorpusKind::Top => 0x1000_0000,
        CorpusKind::Random => 0x2000_0000,
        CorpusKind::PushUsers => 0x3000_0000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_site(CorpusKind::Top, 42);
        let b = generate_site(CorpusKind::Top, 42);
        assert_eq!(a, b);
        let c = generate_site(CorpusKind::Top, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn kinds_are_disjoint_namespaces() {
        let a = generate_site(CorpusKind::Top, 7);
        let b = generate_site(CorpusKind::Random, 7);
        assert_ne!(a.name, b.name);
    }

    #[test]
    fn all_generated_pages_validate() {
        for kind in [CorpusKind::Top, CorpusKind::Random, CorpusKind::PushUsers] {
            for p in generate_set(kind, 40, 1) {
                p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
            }
        }
    }

    #[test]
    fn pushable_fraction_matches_paper_statistic() {
        // §4.2: 52 % of top-100 and 24 % of random-100 sites have < 20 %
        // pushable objects. Check the calibration over a large sample with
        // generous tolerance (it is a Bernoulli estimate).
        let top = generate_set(CorpusKind::Top, 300, 99);
        let frac_low =
            top.iter().filter(|p| p.pushable_fraction() < 0.2).count() as f64 / top.len() as f64;
        assert!((0.40..0.64).contains(&frac_low), "top low-pushable share {frac_low}");

        let random = generate_set(CorpusKind::Random, 300, 99);
        let frac_low = random.iter().filter(|p| p.pushable_fraction() < 0.2).count() as f64
            / random.len() as f64;
        assert!((0.14..0.36).contains(&frac_low), "random low-pushable share {frac_low}");
    }

    #[test]
    fn push_users_have_recorded_lists() {
        let set = generate_set(CorpusKind::PushUsers, 50, 5);
        let with_push = set.iter().filter(|p| !p.recorded_push.is_empty()).count();
        assert!(with_push >= 45, "only {with_push}/50 push users actually push");
        for p in &set {
            for id in &p.recorded_push {
                // Recorded pushes must be pushable (same server group).
                assert_eq!(p.server_group_of(*id), 0, "{}: pushed third-party {id:?}", p.name);
            }
        }
    }

    #[test]
    fn top_sites_are_bigger() {
        let top = generate_set(CorpusKind::Top, 100, 3);
        let random = generate_set(CorpusKind::Random, 100, 3);
        let avg = |s: &[Page]| {
            s.iter().map(|p| p.subresources().len()).sum::<usize>() as f64 / s.len() as f64
        };
        assert!(avg(&top) > 1.5 * avg(&random), "top {} vs random {}", avg(&top), avg(&random));
    }

    #[test]
    fn sites_have_multiple_server_groups() {
        let p = generate_site(CorpusKind::Top, 11);
        assert!(p.server_group_count() > 2);
    }
}
