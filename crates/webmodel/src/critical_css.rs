//! Critical-CSS extraction and HTML restructuring (the paper's
//! "optimized" page variants, §5).
//!
//! The paper uses penthouse to compute, for each stylesheet, the subset of
//! rules needed to render above-the-fold content; the page is then rewritten
//! so the critical CSS is referenced in `<head>` and everything else moves
//! to the end of `<body>` (no longer render-blocking). Our model carries a
//! `critical_fraction` per stylesheet, so the transform splits each
//! render-blocking CSS resource into:
//!
//! * a *critical* stylesheet of `size × critical_fraction` bytes referenced
//!   at the original offset (still render-blocking), and
//! * a *deferred* remainder referenced at the very end of the document,
//!   not render-blocking.
//!
//! Resources discovered *from* the stylesheet (fonts, background images)
//! follow the critical part when they are above-the-fold, else the
//! deferred part. Sites that already inline/critical-optimize (w16 in the
//! paper, `critical_fraction = 1.0`) come out unchanged — matching the
//! paper's observation that a critical-CSS rewrite cannot help them.

use crate::page::Page;
use crate::types::{Discovery, Resource, ResourceId, ResourceType};

/// Minimum bytes for a split-off stylesheet; below this the split is not
/// worth a request and the stylesheet is left alone.
const MIN_SPLIT_BYTES: usize = 1024;

/// Outcome of the rewrite.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalCssRewrite {
    /// The rewritten page.
    pub page: Page,
    /// Ids (in the *new* page) of the critical stylesheets.
    pub critical_css: Vec<ResourceId>,
    /// Ids (in the new page) of the deferred remainders.
    pub deferred_css: Vec<ResourceId>,
    /// Mapping from old resource ids to new ones (critical part for split
    /// stylesheets).
    pub id_map: Vec<ResourceId>,
}

/// Apply the critical-CSS rewrite to `page`.
pub fn rewrite_critical_css(page: &Page) -> CriticalCssRewrite {
    let mut new_page = page.clone();
    new_page.name = format!("{}-crit", page.name);
    let mut critical = Vec::new();
    let mut deferred = Vec::new();
    let id_map: Vec<ResourceId> = page.resources.iter().map(|r| r.id).collect();

    // Collect the render-blocking stylesheets eligible for a split.
    let targets: Vec<ResourceId> = page
        .resources
        .iter()
        .filter(|r| {
            r.rtype == ResourceType::Css
                && r.render_blocking
                && r.critical_fraction < 1.0
                && ((r.size as f64 * (1.0 - r.critical_fraction)) as usize) >= MIN_SPLIT_BYTES
        })
        .map(|r| r.id)
        .collect();

    let doc_end = page.html_size().saturating_sub(1);
    for id in targets {
        let crit_size = ((page.resource(id).size as f64 * page.resource(id).critical_fraction)
            as usize)
            .max(MIN_SPLIT_BYTES.min(page.resource(id).size / 2).max(256));
        let rest_size = page.resource(id).size - crit_size.min(page.resource(id).size);
        if rest_size < MIN_SPLIT_BYTES {
            continue;
        }
        // Shrink the original into the critical part (keeps its offset and
        // render-blocking role; everything referencing it stays valid).
        {
            let r = &mut new_page.resources[id.0];
            r.size = crit_size;
            r.critical_fraction = 1.0;
            r.exec_us =
                (r.exec_us as f64 * crit_size as f64 / (crit_size + rest_size) as f64) as u64;
            r.path = format!("{}.crit.css", r.path.trim_end_matches(".css"));
        }
        critical.push(id);
        // Append the deferred remainder at the end of the document.
        let deferred_id = ResourceId(new_page.resources.len());
        let orig = page.resource(id);
        new_page.resources.push(Resource {
            id: deferred_id,
            origin: orig.origin,
            path: format!("{}.rest.css", orig.path.trim_end_matches(".css")),
            rtype: ResourceType::Css,
            size: rest_size,
            exec_us: orig.exec_us.saturating_sub(new_page.resources[id.0].exec_us),
            discovery: Discovery::Html { offset: doc_end },
            script_mode: orig.script_mode,
            render_blocking: false,
            above_fold: false,
            visual_weight: 0.0,
            critical_fraction: 0.0,
        });
        deferred.push(deferred_id);
    }

    debug_assert!(new_page.validate().is_ok(), "rewrite kept the page valid");
    CriticalCssRewrite { page: new_page, critical_css: critical, deferred_css: deferred, id_map }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{PageBuilder, ResourceSpec};

    fn page_with_css(critical_fraction: f64, size: usize) -> Page {
        let mut b = PageBuilder::new("t", "example.org", 50_000, 5_000);
        b.resource(ResourceSpec::css(0, size, 400, critical_fraction));
        b.resource(ResourceSpec::image(0, 10_000, 20_000, true, 1.0));
        b.text_paint(10_000, 1.0);
        b.build()
    }

    #[test]
    fn splits_blocking_css() {
        let p = page_with_css(0.25, 40_000);
        let rw = rewrite_critical_css(&p);
        assert_eq!(rw.critical_css.len(), 1);
        assert_eq!(rw.deferred_css.len(), 1);
        let crit = rw.page.resource(rw.critical_css[0]);
        let rest = rw.page.resource(rw.deferred_css[0]);
        assert_eq!(crit.size, 10_000);
        assert_eq!(rest.size, 30_000);
        assert!(crit.render_blocking);
        assert!(!rest.render_blocking);
        // Total bytes conserved.
        assert_eq!(crit.size + rest.size, 40_000);
        assert!(rw.page.validate().is_ok());
    }

    #[test]
    fn already_optimized_css_untouched() {
        // critical_fraction = 1.0 models a site that already ships critical
        // CSS (w16/twitter in the paper).
        let p = page_with_css(1.0, 40_000);
        let rw = rewrite_critical_css(&p);
        assert!(rw.critical_css.is_empty());
        assert_eq!(rw.page.resources.len(), p.resources.len());
        assert_eq!(rw.page.resource(ResourceId(1)).size, 40_000);
    }

    #[test]
    fn tiny_css_not_split() {
        let p = page_with_css(0.5, 1500);
        let rw = rewrite_critical_css(&p);
        assert!(rw.critical_css.is_empty(), "a 750-byte remainder is not worth a request");
    }

    #[test]
    fn non_blocking_css_untouched() {
        let mut b = PageBuilder::new("t", "example.org", 50_000, 5_000);
        let mut spec = ResourceSpec::css(0, 40_000, 49_000, 0.2);
        spec.render_blocking = false;
        b.resource(spec);
        let p = b.build();
        let rw = rewrite_critical_css(&p);
        assert!(rw.critical_css.is_empty());
    }

    #[test]
    fn fonts_keep_their_parent() {
        let mut b = PageBuilder::new("t", "example.org", 50_000, 5_000);
        let css = b.resource(ResourceSpec::css(0, 40_000, 400, 0.25));
        b.resource(ResourceSpec::font(0, 20_000, css));
        let p = b.build();
        let rw = rewrite_critical_css(&p);
        // The font's parent (the critical part) still exists and is CSS.
        let font = rw.page.resources.iter().find(|r| r.rtype == ResourceType::Font).unwrap();
        match font.discovery {
            Discovery::Css { parent } => {
                assert_eq!(rw.page.resource(parent).rtype, ResourceType::Css)
            }
            other => panic!("font discovery changed: {other:?}"),
        }
        assert!(rw.page.validate().is_ok());
    }
}
