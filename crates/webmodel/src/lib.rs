//! # h2push-webmodel — the website model and corpus
//!
//! Structural models of the web pages the paper replays: resources with
//! types, sizes, discovery offsets and render-blocking semantics; origins
//! with server groups (HTTP/2 connection coalescing, §4.1); a
//! Mahimahi-style record database; the critical-CSS rewrite used by the
//! "optimized" strategies (§5); seeded random corpora calibrated to the
//! paper's §4.2 statistics; and hand-written specs for the synthetic sites
//! s1–s10 (§4.3) and the Table-1 real-world sites w1–w20 (§5).

pub mod corpus;
pub mod critical_css;
pub mod page;
pub mod recorddb;
pub mod sites_realworld;
pub mod sites_synthetic;
pub mod types;

pub use corpus::{generate_set, generate_site, CorpusKind};
pub use critical_css::{rewrite_critical_css, CriticalCssRewrite};
pub use page::{Page, PageBuilder, ResourceSpec};
pub use recorddb::{RecordDb, RecordError, RecordedResponse, RequestKey};
pub use sites_realworld::{realworld_labels, realworld_set, realworld_site};
pub use sites_synthetic::{custom_strategy, synthetic_set, synthetic_site};
pub use types::{
    Discovery, InlineScript, Origin, Resource, ResourceId, ResourceType, ScriptMode, TextPaint,
};
