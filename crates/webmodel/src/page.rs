//! The page: a complete structural description of one recorded website.

use crate::types::{
    Discovery, InlineScript, Origin, Resource, ResourceId, ResourceType, ScriptMode, TextPaint,
};
use serde::{Deserialize, Serialize};

/// A recorded website ready for replay.
///
/// Invariants (checked by [`Page::validate`]):
/// * resource 0 is the HTML document, served by origin 0;
/// * every discovery offset lies within the document;
/// * discovery parents exist and are of the right type;
/// * origins referenced by resources exist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Page {
    /// Site label (e.g. `"w1-wikipedia"`).
    pub name: String,
    /// All resources; index 0 is the HTML document.
    pub resources: Vec<Resource>,
    /// All origins; index 0 is the main origin serving the HTML.
    pub origins: Vec<Origin>,
    /// Progressive paint points of the document's own text/layout.
    pub text_paints: Vec<TextPaint>,
    /// Inline script blocks inside the document.
    pub inline_scripts: Vec<InlineScript>,
    /// Byte offset where `</head>` ends and `<body>` begins.
    pub head_end: usize,
    /// Push list observed on the live deployment (empty if the site did not
    /// use push) — replayed by the `PushAsRecorded` strategy (§4.1).
    pub recorded_push: Vec<ResourceId>,
}

impl Page {
    /// The HTML document resource.
    pub fn html(&self) -> &Resource {
        &self.resources[0]
    }

    /// Size of the HTML document in (wire) bytes.
    pub fn html_size(&self) -> usize {
        self.resources[0].size
    }

    /// Look up a resource.
    pub fn resource(&self, id: ResourceId) -> &Resource {
        &self.resources[id.0]
    }

    /// All subresources (everything but the document).
    pub fn subresources(&self) -> &[Resource] {
        &self.resources[1..]
    }

    /// Host of a resource's origin.
    pub fn host_of(&self, id: ResourceId) -> &str {
        &self.origins[self.resource(id).origin].host
    }

    /// Server group answering for a resource.
    pub fn server_group_of(&self, id: ResourceId) -> usize {
        self.origins[self.resource(id).origin].server_group
    }

    /// Number of distinct server groups (≈ distinct servers contacted).
    pub fn server_group_count(&self) -> usize {
        self.origins.iter().map(|o| o.server_group).max().unwrap_or(0) + 1
    }

    /// Resources *pushable* from the main connection: those answered by the
    /// HTML's own server group (§2.1 authority rule plus §4.1 coalescing).
    pub fn pushable(&self) -> Vec<ResourceId> {
        let main = self.server_group_of(ResourceId(0));
        self.subresources()
            .iter()
            .filter(|r| self.origins[r.origin].server_group == main)
            .map(|r| r.id)
            .collect()
    }

    /// Fraction of subresources that are pushable (the §4.2 "Pushable
    /// Objects" statistic).
    pub fn pushable_fraction(&self) -> f64 {
        if self.subresources().is_empty() {
            return 1.0;
        }
        self.pushable().len() as f64 / self.subresources().len() as f64
    }

    /// Subresources of a given type.
    pub fn by_type(&self, t: ResourceType) -> Vec<ResourceId> {
        self.subresources().iter().filter(|r| r.rtype == t).map(|r| r.id).collect()
    }

    /// Total visual weight of the page (document text + above-fold
    /// resources); the denominator for visual completeness.
    pub fn total_visual_weight(&self) -> f64 {
        let text: f64 = self.text_paints.iter().map(|t| t.weight).sum();
        let res: f64 =
            self.resources.iter().filter(|r| r.above_fold).map(|r| r.visual_weight).sum();
        text + res
    }

    /// Total transfer size of all pushable subresources in bytes.
    pub fn pushable_bytes(&self) -> usize {
        self.pushable().iter().map(|&id| self.resource(id).size).sum()
    }

    /// Check the structural invariants; returns a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        if self.resources.is_empty() {
            return Err("page has no resources".into());
        }
        if self.resources[0].rtype != ResourceType::Html {
            return Err("resource 0 must be the HTML document".into());
        }
        if self.origins.is_empty() {
            return Err("page has no origins".into());
        }
        if self.resources[0].origin != 0 {
            return Err("the document must be served by origin 0".into());
        }
        let html_size = self.resources[0].size;
        if self.head_end > html_size {
            return Err(format!("head_end {} beyond document size {html_size}", self.head_end));
        }
        for (i, r) in self.resources.iter().enumerate() {
            if r.id.0 != i {
                return Err(format!("resource {i} has mismatched id {:?}", r.id));
            }
            if r.origin >= self.origins.len() {
                return Err(format!("resource {i} references unknown origin {}", r.origin));
            }
            if r.size == 0 {
                return Err(format!("resource {i} has zero size"));
            }
            if !(0.0..=1.0).contains(&r.critical_fraction) {
                return Err(format!("resource {i} critical_fraction out of range"));
            }
            match r.discovery {
                Discovery::Html { offset } => {
                    if i == 0 {
                        continue;
                    }
                    if offset >= html_size {
                        return Err(format!(
                            "resource {i} referenced at {offset}, beyond document size {html_size}"
                        ));
                    }
                }
                Discovery::Css { parent } | Discovery::Script { parent } => {
                    let Some(p) = self.resources.get(parent.0) else {
                        return Err(format!("resource {i} has unknown parent {:?}", parent));
                    };
                    let want = if matches!(r.discovery, Discovery::Css { .. }) {
                        ResourceType::Css
                    } else {
                        ResourceType::Js
                    };
                    // Inline-script-discovered resources hang off the HTML.
                    if p.rtype != want && p.rtype != ResourceType::Html {
                        return Err(format!(
                            "resource {i} discovered by {:?} of wrong type {:?}",
                            parent, p.rtype
                        ));
                    }
                    if parent.0 == i {
                        return Err(format!("resource {i} discovers itself"));
                    }
                }
            }
        }
        for t in &self.text_paints {
            if t.offset > html_size {
                return Err("text paint beyond document".into());
            }
        }
        for s in &self.inline_scripts {
            if s.offset > html_size {
                return Err("inline script beyond document".into());
            }
        }
        for p in &self.recorded_push {
            if p.0 == 0 || p.0 >= self.resources.len() {
                return Err(format!("recorded push of invalid resource {:?}", p));
            }
        }
        Ok(())
    }
}

/// Fluent builder for hand-written site specs (used for s1–s10 and w1–w20).
///
/// ```
/// use h2push_webmodel::{PageBuilder, ResourceSpec};
///
/// let mut b = PageBuilder::new("demo", "demo.test", 40_000, 4_000);
/// let css = b.resource(ResourceSpec::css(0, 12_000, 300, 0.4));
/// b.resource(ResourceSpec::font(0, 20_000, css));
/// b.text_paint(10_000, 1.0);
/// let page = b.build(); // panics on invalid specs
/// assert_eq!(page.pushable().len(), 2);
/// ```
pub struct PageBuilder {
    name: String,
    resources: Vec<Resource>,
    origins: Vec<Origin>,
    text_paints: Vec<TextPaint>,
    inline_scripts: Vec<InlineScript>,
    head_end: usize,
    recorded_push: Vec<ResourceId>,
}

impl PageBuilder {
    /// Start a page: `html_size` wire bytes served from `host`, with the
    /// head ending at `head_end`.
    pub fn new(name: &str, host: &str, html_size: usize, head_end: usize) -> Self {
        let html = Resource {
            id: ResourceId(0),
            origin: 0,
            path: "/".into(),
            rtype: ResourceType::Html,
            size: html_size,
            exec_us: 0,
            discovery: Discovery::Html { offset: 0 },
            script_mode: ScriptMode::Blocking,
            render_blocking: false,
            above_fold: false,
            visual_weight: 0.0,
            critical_fraction: 0.0,
        };
        PageBuilder {
            name: name.into(),
            resources: vec![html],
            origins: vec![Origin { host: host.into(), server_group: 0, same_infra: true }],
            text_paints: Vec::new(),
            inline_scripts: Vec::new(),
            head_end,
            recorded_push: Vec::new(),
        }
    }

    /// Add an origin; returns its index.
    pub fn origin(&mut self, host: &str, server_group: usize, same_infra: bool) -> usize {
        self.origins.push(Origin { host: host.into(), server_group, same_infra });
        self.origins.len() - 1
    }

    /// Add a resource; returns its id. The path gets a stable default if
    /// empty.
    #[allow(clippy::too_many_arguments)]
    pub fn resource(&mut self, r: ResourceSpec) -> ResourceId {
        let id = ResourceId(self.resources.len());
        let path = if r.path.is_empty() {
            format!("/{}/{}.{}", r.rtype.label(), id.0, r.rtype.label())
        } else {
            r.path
        };
        self.resources.push(Resource {
            id,
            origin: r.origin,
            path,
            rtype: r.rtype,
            size: r.size,
            exec_us: r.exec_us,
            discovery: r.discovery,
            script_mode: r.script_mode,
            render_blocking: r.render_blocking,
            above_fold: r.above_fold,
            visual_weight: r.visual_weight,
            critical_fraction: r.critical_fraction,
        });
        id
    }

    /// Add a progressive text paint point.
    pub fn text_paint(&mut self, offset: usize, weight: f64) -> &mut Self {
        self.text_paints.push(TextPaint { offset, weight });
        self
    }

    /// Add an inline script block.
    pub fn inline_script(&mut self, offset: usize, exec_us: u64, needs_cssom: bool) -> &mut Self {
        self.inline_scripts.push(InlineScript { offset, exec_us, needs_cssom });
        self
    }

    /// Record the live deployment's push list.
    pub fn recorded_push(&mut self, ids: &[ResourceId]) -> &mut Self {
        self.recorded_push.extend_from_slice(ids);
        self
    }

    /// Finish; panics on invariant violations (specs are code, not input).
    pub fn build(self) -> Page {
        let page = Page {
            name: self.name,
            resources: self.resources,
            origins: self.origins,
            text_paints: self.text_paints,
            inline_scripts: self.inline_scripts,
            head_end: self.head_end,
            recorded_push: self.recorded_push,
        };
        if let Err(e) = page.validate() {
            panic!("invalid page spec '{}': {e}", page.name);
        }
        page
    }
}

/// Parameters for [`PageBuilder::resource`].
#[derive(Debug, Clone)]
pub struct ResourceSpec {
    /// Origin index.
    pub origin: usize,
    /// URL path ("" for an auto-generated one).
    pub path: String,
    /// Content type.
    pub rtype: ResourceType,
    /// Transfer size in bytes.
    pub size: usize,
    /// Evaluation CPU time in µs.
    pub exec_us: u64,
    /// Discovery path.
    pub discovery: Discovery,
    /// Script mode (scripts only).
    pub script_mode: ScriptMode,
    /// Render-blocking (CSS in head).
    pub render_blocking: bool,
    /// In the initial viewport.
    pub above_fold: bool,
    /// Visual weight when painted.
    pub visual_weight: f64,
    /// Critical fraction (CSS only).
    pub critical_fraction: f64,
}

impl ResourceSpec {
    /// A head stylesheet: render-blocking, above-the-fold relevant.
    pub fn css(origin: usize, size: usize, offset: usize, critical_fraction: f64) -> Self {
        ResourceSpec {
            origin,
            path: String::new(),
            rtype: ResourceType::Css,
            size,
            exec_us: (size as u64 / 100).max(200), // ~10 µs per KB, min 0.2 ms
            discovery: Discovery::Html { offset },
            script_mode: ScriptMode::Blocking,
            render_blocking: true,
            above_fold: true,
            visual_weight: 0.0,
            critical_fraction,
        }
    }

    /// A classic blocking script.
    pub fn js(origin: usize, size: usize, offset: usize, exec_us: u64) -> Self {
        ResourceSpec {
            origin,
            path: String::new(),
            rtype: ResourceType::Js,
            size,
            exec_us,
            discovery: Discovery::Html { offset },
            script_mode: ScriptMode::Blocking,
            render_blocking: false,
            above_fold: false,
            visual_weight: 0.0,
            critical_fraction: 0.0,
        }
    }

    /// An async script.
    pub fn js_async(origin: usize, size: usize, offset: usize, exec_us: u64) -> Self {
        ResourceSpec { script_mode: ScriptMode::Async, ..Self::js(origin, size, offset, exec_us) }
    }

    /// An image referenced in the body.
    pub fn image(origin: usize, size: usize, offset: usize, above_fold: bool, weight: f64) -> Self {
        ResourceSpec {
            origin,
            path: String::new(),
            rtype: ResourceType::Image,
            size,
            exec_us: 300,
            discovery: Discovery::Html { offset },
            script_mode: ScriptMode::Blocking,
            render_blocking: false,
            above_fold,
            visual_weight: weight,
            critical_fraction: 0.0,
        }
    }

    /// A font referenced from a stylesheet.
    pub fn font(origin: usize, size: usize, css_parent: ResourceId) -> Self {
        ResourceSpec {
            origin,
            path: String::new(),
            rtype: ResourceType::Font,
            size,
            exec_us: 200,
            discovery: Discovery::Css { parent: css_parent },
            script_mode: ScriptMode::Blocking,
            render_blocking: false,
            above_fold: true,
            visual_weight: 0.5,
            critical_fraction: 0.0,
        }
    }

    /// A resource loaded by a script (hidden from the preload scanner).
    pub fn script_loaded(
        origin: usize,
        size: usize,
        js_parent: ResourceId,
        rtype: ResourceType,
    ) -> Self {
        ResourceSpec {
            origin,
            path: String::new(),
            rtype,
            size,
            exec_us: 300,
            discovery: Discovery::Script { parent: js_parent },
            script_mode: ScriptMode::Async,
            render_blocking: false,
            above_fold: false,
            visual_weight: 0.0,
            critical_fraction: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_page() -> Page {
        let mut b = PageBuilder::new("demo", "example.org", 40_000, 4_000);
        let cdn = b.origin("cdn.example.org", 0, true); // coalesced with main
        let third = b.origin("ads.tracker.net", 1, false);
        let css = b.resource(ResourceSpec::css(0, 20_000, 500, 0.3));
        b.resource(ResourceSpec::js(cdn, 30_000, 1_000, 15_000));
        b.resource(ResourceSpec::image(0, 50_000, 10_000, true, 3.0));
        b.resource(ResourceSpec::font(0, 25_000, css));
        b.resource(ResourceSpec::js_async(third, 15_000, 20_000, 5_000));
        b.text_paint(8_000, 1.0);
        b.text_paint(30_000, 2.0);
        b.inline_script(12_000, 3_000, true);
        b.build()
    }

    #[test]
    fn builder_produces_valid_page() {
        let p = demo_page();
        assert_eq!(p.resources.len(), 6);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn pushable_respects_server_groups() {
        let p = demo_page();
        // css, js (cdn coalesced), image, font are pushable; the ad is not.
        assert_eq!(p.pushable().len(), 4);
        assert!((p.pushable_fraction() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn by_type_filters() {
        let p = demo_page();
        assert_eq!(p.by_type(ResourceType::Js).len(), 2);
        assert_eq!(p.by_type(ResourceType::Css).len(), 1);
        assert_eq!(p.by_type(ResourceType::Html).len(), 0); // subresources only
    }

    #[test]
    fn total_visual_weight_sums_text_and_resources() {
        let p = demo_page();
        // text 3.0 + image 3.0 + font 0.5 (css has weight 0).
        assert!((p.total_visual_weight() - 6.5).abs() < 1e-9);
    }

    #[test]
    fn validation_catches_bad_offsets() {
        let mut p = demo_page();
        p.resources[2].discovery = Discovery::Html { offset: 1_000_000 };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_parent() {
        let mut p = demo_page();
        p.resources[2].discovery = Discovery::Css { parent: ResourceId(99) };
        assert!(p.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let p = demo_page();
        let json = serde_json::to_string(&p).unwrap();
        let back: Page = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn pushable_bytes_counts_sizes() {
        let p = demo_page();
        assert_eq!(p.pushable_bytes(), 20_000 + 30_000 + 50_000 + 25_000);
    }
}
