//! Mahimahi-style record database (§4.1).
//!
//! Mahimahi records HTTP request/response pairs in per-site databases and
//! later serves replays by matching requests against them. This module is
//! the equivalent: a [`RecordDb`] maps `(host, path)` to a recorded
//! response. Databases serialize to JSON so recorded corpora can be stored,
//! inspected and shared like Mahimahi record directories.

use crate::page::Page;
use crate::types::ResourceId;
use serde::{Deserialize, Serialize};

/// A recorded response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordedResponse {
    /// HTTP status.
    pub status: u16,
    /// `content-type` value.
    pub content_type: String,
    /// Body length in (wire) bytes.
    pub body_len: usize,
    /// The page resource this response corresponds to.
    pub resource: ResourceId,
}

/// A request key: authority plus path.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RequestKey {
    /// `:authority`.
    pub host: String,
    /// `:path`.
    pub path: String,
}

/// The record database for one site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordDb {
    /// Site name (matches [`Page::name`]).
    pub site: String,
    entries: Vec<(RequestKey, RecordedResponse)>,
    /// Entry indices sorted by `(host, path)`, so [`RecordDb::lookup`] is a
    /// binary search over borrowed strings — no per-request key allocation.
    #[serde(skip)]
    index: Vec<usize>,
}

impl RecordDb {
    /// Record a page: one entry per resource, keyed by its origin host and
    /// path.
    pub fn record(page: &Page) -> Self {
        let mut db = RecordDb { site: page.name.clone(), entries: Vec::new(), index: Vec::new() };
        for r in &page.resources {
            let key =
                RequestKey { host: page.origins[r.origin].host.clone(), path: r.path.clone() };
            let resp = RecordedResponse {
                status: 200,
                content_type: r.rtype.mime().to_string(),
                body_len: r.size,
                resource: r.id,
            };
            db.entries.push((key, resp));
        }
        db.reindex();
        db
    }

    /// Number of recorded pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Match a request, Mahimahi-style: exact host+path. Allocation-free:
    /// binary search against the sorted index with borrowed keys.
    pub fn lookup(&self, host: &str, path: &str) -> Option<&RecordedResponse> {
        self.index
            .binary_search_by(|&i| {
                let k = &self.entries[i].0;
                (k.host.as_str(), k.path.as_str()).cmp(&(host, path))
            })
            .ok()
            .map(|pos| &self.entries[self.index[pos]].1)
    }

    /// Rebuild the lookup index (needed after deserialization).
    pub fn reindex(&mut self) {
        self.index = (0..self.entries.len()).collect();
        let entries = &self.entries;
        self.index.sort_by(|&a, &b| {
            let (ka, kb) = (&entries[a].0, &entries[b].0);
            (ka.host.as_str(), ka.path.as_str()).cmp(&(kb.host.as_str(), kb.path.as_str()))
        });
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("record DB serializes")
    }

    /// Deserialize from JSON (and reindex).
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        let mut db: RecordDb = serde_json::from_str(s)?;
        db.reindex();
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{PageBuilder, ResourceSpec};

    fn page() -> Page {
        let mut b = PageBuilder::new("rdb-test", "example.org", 10_000, 1_000);
        let cdn = b.origin("cdn.example.org", 0, true);
        b.resource(ResourceSpec::css(0, 5_000, 100, 0.5));
        b.resource(ResourceSpec::js(cdn, 8_000, 200, 1_000));
        b.build()
    }

    #[test]
    fn record_and_lookup() {
        let db = RecordDb::record(&page());
        assert_eq!(db.len(), 3);
        let root = db.lookup("example.org", "/").unwrap();
        assert_eq!(root.body_len, 10_000);
        assert_eq!(root.content_type, "text/html");
        assert!(db.lookup("example.org", "/missing").is_none());
        assert!(db.lookup("evil.org", "/").is_none());
    }

    #[test]
    fn cdn_resources_match_their_host() {
        let p = page();
        let db = RecordDb::record(&p);
        let js_path = p.resources[2].path.clone();
        assert!(db.lookup("cdn.example.org", &js_path).is_some());
        assert!(db.lookup("example.org", &js_path).is_none());
    }

    #[test]
    fn json_round_trip_preserves_lookup() {
        let db = RecordDb::record(&page());
        let json = db.to_json();
        let db2 = RecordDb::from_json(&json).unwrap();
        assert_eq!(db2.len(), db.len());
        assert_eq!(
            db2.lookup("example.org", "/").unwrap().body_len,
            db.lookup("example.org", "/").unwrap().body_len
        );
    }
}
