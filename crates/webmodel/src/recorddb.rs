//! Mahimahi-style record database (§4.1).
//!
//! Mahimahi records HTTP request/response pairs in per-site databases and
//! later serves replays by matching requests against them. This module is
//! the equivalent: a [`RecordDb`] maps `(host, path)` to a recorded
//! response. Databases serialize to JSON so recorded corpora can be stored,
//! inspected and shared like Mahimahi record directories.

use crate::page::Page;
use crate::types::ResourceId;
use serde::{Deserialize, Serialize};

/// A recorded response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordedResponse {
    /// HTTP status.
    pub status: u16,
    /// `content-type` value.
    pub content_type: String,
    /// Body length in (wire) bytes.
    pub body_len: usize,
    /// The page resource this response corresponds to.
    pub resource: ResourceId,
}

/// Why a record database failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// The JSON did not parse.
    Json(String),
    /// Two entries share one `(host, path)` key — replay lookups would
    /// silently pick one of them.
    DuplicateKey {
        /// `:authority` of the colliding entries.
        host: String,
        /// `:path` of the colliding entries.
        path: String,
    },
    /// A recorded 200 response with a zero-length body: nothing to
    /// replay, and a zero-byte transfer would corrupt timing metrics.
    EmptyBody {
        /// `:authority` of the offending entry.
        host: String,
        /// `:path` of the offending entry.
        path: String,
    },
    /// An entry references a resource the page does not define.
    DanglingResource {
        /// `:authority` of the offending entry.
        host: String,
        /// `:path` of the offending entry.
        path: String,
        /// The out-of-range resource id.
        resource: ResourceId,
        /// Number of resources the page actually has.
        page_resources: usize,
    },
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Json(e) => write!(f, "record DB JSON error: {e}"),
            RecordError::DuplicateKey { host, path } => {
                write!(f, "duplicate record for {host}{path}")
            }
            RecordError::EmptyBody { host, path } => {
                write!(f, "zero-length 200 body recorded for {host}{path}")
            }
            RecordError::DanglingResource { host, path, resource, page_resources } => write!(
                f,
                "record for {host}{path} references resource {} but the page has {}",
                resource.0, page_resources
            ),
        }
    }
}

impl std::error::Error for RecordError {}

/// A request key: authority plus path.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RequestKey {
    /// `:authority`.
    pub host: String,
    /// `:path`.
    pub path: String,
}

/// The record database for one site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordDb {
    /// Site name (matches [`Page::name`]).
    pub site: String,
    entries: Vec<(RequestKey, RecordedResponse)>,
    /// Entry indices sorted by `(host, path)`, so [`RecordDb::lookup`] is a
    /// binary search over borrowed strings — no per-request key allocation.
    #[serde(skip)]
    index: Vec<usize>,
}

impl RecordDb {
    /// Record a page: one entry per resource, keyed by its origin host and
    /// path.
    pub fn record(page: &Page) -> Self {
        let mut db = RecordDb { site: page.name.clone(), entries: Vec::new(), index: Vec::new() };
        for r in &page.resources {
            let key =
                RequestKey { host: page.origins[r.origin].host.clone(), path: r.path.clone() };
            let resp = RecordedResponse {
                status: 200,
                content_type: r.rtype.mime().to_string(),
                body_len: r.size,
                resource: r.id,
            };
            db.entries.push((key, resp));
        }
        db.reindex();
        db
    }

    /// Number of recorded pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Match a request, Mahimahi-style: exact host+path. Allocation-free:
    /// binary search against the sorted index with borrowed keys.
    pub fn lookup(&self, host: &str, path: &str) -> Option<&RecordedResponse> {
        self.index
            .binary_search_by(|&i| {
                let k = &self.entries[i].0;
                (k.host.as_str(), k.path.as_str()).cmp(&(host, path))
            })
            .ok()
            .map(|pos| &self.entries[self.index[pos]].1)
    }

    /// Rebuild the lookup index (needed after deserialization).
    pub fn reindex(&mut self) {
        self.index = (0..self.entries.len()).collect();
        let entries = &self.entries;
        self.index.sort_by(|&a, &b| {
            let (ka, kb) = (&entries[a].0, &entries[b].0);
            (ka.host.as_str(), ka.path.as_str()).cmp(&(kb.host.as_str(), kb.path.as_str()))
        });
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("record DB serializes")
    }

    /// Deserialize from JSON (and reindex). Performs **no** validation;
    /// prefer [`RecordDb::load_json`] for untrusted corpora.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        let mut db: RecordDb = serde_json::from_str(s)?;
        db.reindex();
        Ok(db)
    }

    /// Deserialize from JSON and validate the database's internal
    /// invariants ([`RecordDb::validate`]). This is the loading path for
    /// recorded corpora coming from disk: a malformed or internally
    /// inconsistent database is a typed [`RecordError`], not a silent
    /// lookup anomaly mid-replay.
    pub fn load_json(s: &str) -> Result<Self, RecordError> {
        let db = Self::from_json(s).map_err(|e| RecordError::Json(e.to_string()))?;
        db.validate()?;
        Ok(db)
    }

    /// Check internal invariants: no duplicate `(host, path)` keys and
    /// no zero-length 200 bodies.
    pub fn validate(&self) -> Result<(), RecordError> {
        // The index is sorted by key, so duplicates are adjacent.
        for w in self.index.windows(2) {
            let (a, b) = (&self.entries[w[0]].0, &self.entries[w[1]].0);
            if a == b {
                return Err(RecordError::DuplicateKey {
                    host: a.host.clone(),
                    path: a.path.clone(),
                });
            }
        }
        for (key, resp) in &self.entries {
            if resp.status == 200 && resp.body_len == 0 {
                return Err(RecordError::EmptyBody {
                    host: key.host.clone(),
                    path: key.path.clone(),
                });
            }
        }
        Ok(())
    }

    /// [`RecordDb::validate`], plus cross-checks against the page the
    /// database claims to record: every entry's resource id must exist.
    pub fn validate_against(&self, page: &Page) -> Result<(), RecordError> {
        self.validate()?;
        let n = page.resources.len();
        for (key, resp) in &self.entries {
            if resp.resource.0 >= n {
                return Err(RecordError::DanglingResource {
                    host: key.host.clone(),
                    path: key.path.clone(),
                    resource: resp.resource,
                    page_resources: n,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{PageBuilder, ResourceSpec};

    fn page() -> Page {
        let mut b = PageBuilder::new("rdb-test", "example.org", 10_000, 1_000);
        let cdn = b.origin("cdn.example.org", 0, true);
        b.resource(ResourceSpec::css(0, 5_000, 100, 0.5));
        b.resource(ResourceSpec::js(cdn, 8_000, 200, 1_000));
        b.build()
    }

    #[test]
    fn record_and_lookup() {
        let db = RecordDb::record(&page());
        assert_eq!(db.len(), 3);
        let root = db.lookup("example.org", "/").unwrap();
        assert_eq!(root.body_len, 10_000);
        assert_eq!(root.content_type, "text/html");
        assert!(db.lookup("example.org", "/missing").is_none());
        assert!(db.lookup("evil.org", "/").is_none());
    }

    #[test]
    fn cdn_resources_match_their_host() {
        let p = page();
        let db = RecordDb::record(&p);
        let js_path = p.resources[2].path.clone();
        assert!(db.lookup("cdn.example.org", &js_path).is_some());
        assert!(db.lookup("example.org", &js_path).is_none());
    }

    #[test]
    fn recorded_pages_validate_clean() {
        let p = page();
        let db = RecordDb::record(&p);
        assert_eq!(db.validate(), Ok(()));
        assert_eq!(db.validate_against(&p), Ok(()));
        assert!(RecordDb::load_json(&db.to_json()).is_ok());
    }

    #[test]
    fn duplicate_keys_are_a_typed_error() {
        let mut db = RecordDb::record(&page());
        let dup = db.entries[0].clone();
        db.entries.push(dup);
        db.reindex();
        match db.validate() {
            Err(RecordError::DuplicateKey { host, path }) => {
                assert_eq!(host, "example.org");
                assert_eq!(path, "/");
            }
            other => panic!("expected DuplicateKey, got {other:?}"),
        }
        assert!(matches!(
            RecordDb::load_json(&db.to_json()),
            Err(RecordError::DuplicateKey { .. })
        ));
    }

    #[test]
    fn zero_length_bodies_are_a_typed_error() {
        let mut db = RecordDb::record(&page());
        db.entries[1].1.body_len = 0;
        db.reindex();
        assert!(matches!(db.validate(), Err(RecordError::EmptyBody { .. })));
    }

    #[test]
    fn dangling_resource_refs_are_a_typed_error() {
        let p = page();
        let mut db = RecordDb::record(&p);
        db.entries[2].1.resource = ResourceId(99);
        db.reindex();
        // Internally consistent…
        assert_eq!(db.validate(), Ok(()));
        // …but not against the page it claims to record.
        match db.validate_against(&p) {
            Err(RecordError::DanglingResource { resource, page_resources, .. }) => {
                assert_eq!(resource, ResourceId(99));
                assert_eq!(page_resources, 3);
            }
            other => panic!("expected DanglingResource, got {other:?}"),
        }
    }

    #[test]
    fn malformed_json_is_a_typed_error() {
        assert!(matches!(RecordDb::load_json("{nope"), Err(RecordError::Json(_))));
        let err = RecordError::Json("x".into()).to_string();
        assert!(err.contains("JSON"));
    }

    #[test]
    fn json_round_trip_preserves_lookup() {
        let db = RecordDb::record(&page());
        let json = db.to_json();
        let db2 = RecordDb::from_json(&json).unwrap();
        assert_eq!(db2.len(), db.len());
        assert_eq!(
            db2.lookup("example.org", "/").unwrap().body_len,
            db.lookup("example.org", "/").unwrap().body_len
        );
    }
}
