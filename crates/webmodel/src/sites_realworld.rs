//! The paper's real-world interleaving-push sites w1–w20 (Table 1, §5).
//!
//! We cannot re-crawl the 2018 pages, so each site is encoded from the
//! structural facts the paper itself reports:
//!
//! * w1 (wikipedia, article): 236 KB compressed HTML; in the no-push case
//!   the browser prioritizes the HTML over the CSS, so the server sends the
//!   entire document before any stylesheet — the flagship interleaving win
//!   (−68.85 % SpeedIndex, pushing 78.43 KB of 1123 KB pushable).
//! * w2 (apple): several stylesheets requested after the HTML block script
//!   execution and hence DOM construction; critical CSS alone gives
//!   −19.22 %.
//! * w5 (craigslist): 8 requests, one server.
//! * w7 (reddit) / w8 (bestbuy): a large blocking script in the head
//!   dominates the critical render path; removing 87 KB of CSS from the
//!   CRP barely moves the visual progress.
//! * w9 (paypal): no blocking code until the end of the HTML; push-all
//!   helps, a critical CSS does not add much.
//! * w10 (walmart): image-heavy (push-all causes bandwidth contention)
//!   with a large share of inlined JS (interleaving has little to bite on).
//! * w16 (twitter, profile): 45 KB HTML, critical CSS already inlined by
//!   the site; interleaving pushes just 10.2 KB for −19.67 %.
//! * w17 (cnn): 369 requests to 81 servers; whatever push does is diluted
//!   by third-party complexity.
//!
//! The remaining sites are encoded as their archetypes (storefronts, news
//! portals, banks, portals) with sizes consistent with Table 1's breadth.

use crate::page::{Page, PageBuilder, ResourceSpec};
use crate::types::{ResourceId, ResourceType, ScriptMode};

const KB: usize = 1024;
const MS: u64 = 1000;

/// Compact per-site structural spec.
struct Spec {
    /// wN index (1-based).
    n: usize,
    /// Site label from Table 1.
    label: &'static str,
    /// Compressed HTML size in KB.
    html_kb: usize,
    /// Head size in KB.
    head_kb: usize,
    /// Stylesheets: (KB, critical fraction, render-blocking).
    css: &'static [(usize, f64, bool)],
    /// Scripts: (KB, exec ms, offset as % of HTML, mode).
    js: &'static [(usize, u64, usize, ScriptMode)],
    /// First-party images: (count, avg KB, above-fold count).
    images: (usize, usize, usize),
    /// Fonts (count, KB) hanging off the first stylesheet (or head).
    fonts: (usize, usize),
    /// Third-party objects: (count, avg KB, distinct server groups).
    third: (usize, usize, usize),
    /// How many third-party objects render above the fold (ads/embeds in
    /// the viewport — they dilute what first-party push can improve).
    tp_af: usize,
    /// Inline scripts: (offset % of HTML, exec ms, needs CSSOM).
    inline_js: &'static [(usize, u64, bool)],
    /// Text paint points: (offset % of HTML, weight).
    text: &'static [(usize, f64)],
}

const B: ScriptMode = ScriptMode::Blocking;
const A: ScriptMode = ScriptMode::Async;
const D: ScriptMode = ScriptMode::Defer;

static SPECS: &[Spec] = &[
    Spec {
        n: 1,
        label: "wikipedia",
        html_kb: 236,
        head_kb: 4,
        // Large sitewide CSS, small critical share (the paper pushes
        // 78.43 KB total: critical CSS + one blocking JS + two images).
        css: &[(65, 0.18, true), (38, 0.10, true)],
        js: &[(40, 30, 1, B), (130, 80, 97, D)],
        images: (25, 30, 3),
        fonts: (0, 0),
        third: (2, 10, 1),
        tp_af: 0,
        inline_js: &[],
        text: &[(3, 2.5), (20, 2.0), (50, 1.5), (80, 1.0)],
    },
    Spec {
        n: 2,
        label: "apple",
        html_kb: 55,
        head_kb: 7,
        // Several CSS files block JS execution and DOM construction.
        css: &[(88, 0.22, true), (64, 0.18, true), (41, 0.25, true)],
        js: &[(95, 60, 3, B), (120, 90, 90, D)],
        images: (14, 38, 4),
        fonts: (2, 30),
        third: (4, 12, 2),
        tp_af: 0,
        inline_js: &[(40, 8, true)],
        text: &[(10, 1.5), (45, 1.0)],
    },
    Spec {
        n: 3,
        label: "yahoo",
        html_kb: 120,
        head_kb: 10,
        css: &[(72, 0.2, true)],
        js: &[(150, 140, 4, B), (90, 60, 50, A), (60, 30, 85, A)],
        images: (30, 18, 6),
        fonts: (1, 25),
        third: (40, 14, 14),
        tp_af: 8,
        inline_js: &[(25, 20, true), (60, 15, false)],
        text: &[(8, 1.5), (30, 1.2), (70, 1.0)],
    },
    Spec {
        n: 4,
        label: "amazon",
        html_kb: 180,
        head_kb: 14,
        css: &[(95, 0.25, true), (30, 0.3, true)],
        js: &[(60, 40, 5, B), (200, 150, 92, D)],
        images: (45, 25, 8),
        fonts: (0, 0),
        third: (12, 10, 5),
        tp_af: 4,
        inline_js: &[(20, 25, true), (55, 30, true), (80, 15, false)],
        text: &[(10, 1.5), (40, 1.5), (75, 1.0)],
    },
    Spec {
        n: 5,
        label: "craigslist",
        // 8 requests served by one server (the paper's own count).
        html_kb: 30,
        head_kb: 2,
        css: &[(9, 0.6, true)],
        js: &[(14, 8, 6, B)],
        images: (5, 6, 2),
        fonts: (0, 0),
        third: (0, 0, 0),
        tp_af: 0,
        inline_js: &[],
        text: &[(10, 2.5), (50, 2.0)],
    },
    Spec {
        n: 6,
        label: "chase",
        html_kb: 70,
        head_kb: 9,
        css: &[(110, 0.2, true)],
        js: &[(170, 120, 4, B), (80, 50, 88, D)],
        images: (8, 30, 3),
        fonts: (2, 35),
        third: (6, 8, 3),
        tp_af: 1,
        inline_js: &[(30, 10, true)],
        text: &[(12, 1.5), (50, 1.0)],
    },
    Spec {
        n: 7,
        label: "reddit",
        html_kb: 85,
        head_kb: 8,
        // 87 KB of CSS can leave the CRP, but the huge blocking JS in the
        // head dominates anyway.
        css: &[(87, 0.15, true)],
        js: &[(260, 620, 2, B), (90, 60, 80, A)],
        images: (22, 16, 5),
        fonts: (1, 28),
        third: (10, 12, 4),
        tp_af: 3,
        inline_js: &[(40, 15, true)],
        text: &[(10, 1.2), (45, 1.2)],
    },
    Spec {
        n: 8,
        label: "bestbuy",
        html_kb: 110,
        head_kb: 12,
        css: &[(75, 0.2, true), (25, 0.25, true)],
        js: &[(230, 520, 3, B), (110, 70, 85, D)],
        images: (35, 22, 7),
        fonts: (1, 32),
        third: (14, 10, 6),
        tp_af: 4,
        inline_js: &[(30, 20, true)],
        text: &[(12, 1.2), (55, 1.0)],
    },
    Spec {
        n: 9,
        label: "paypal",
        // No blocking code until the end of the HTML; the stylesheet is
        // small and mostly critical already.
        html_kb: 48,
        head_kb: 5,
        css: &[(28, 0.85, true)],
        js: &[(140, 90, 95, B)],
        images: (10, 28, 4),
        fonts: (2, 30),
        third: (5, 9, 2),
        tp_af: 2,
        inline_js: &[],
        text: &[(15, 1.8), (60, 1.2)],
    },
    Spec {
        n: 10,
        label: "walmart",
        // Image-heavy + lots of inlined JS.
        html_kb: 160,
        head_kb: 12,
        css: &[(70, 0.25, true)],
        js: &[(90, 60, 4, B)],
        images: (60, 35, 10),
        fonts: (1, 30),
        third: (15, 14, 6),
        tp_af: 5,
        inline_js: &[(15, 50, true), (35, 60, true), (60, 45, true), (85, 40, false)],
        text: &[(10, 1.2), (45, 1.2), (80, 0.8)],
    },
    Spec {
        n: 11,
        label: "aliexpress",
        html_kb: 95,
        head_kb: 10,
        css: &[(55, 0.25, true), (20, 0.3, true)],
        js: &[(130, 100, 5, B), (85, 55, 70, A)],
        images: (40, 20, 8),
        fonts: (0, 0),
        third: (18, 11, 7),
        tp_af: 5,
        inline_js: &[(30, 25, true)],
        text: &[(10, 1.3), (50, 1.0)],
    },
    Spec {
        n: 12,
        label: "ebay",
        html_kb: 140,
        head_kb: 11,
        css: &[(80, 0.22, true)],
        js: &[(100, 70, 4, B), (150, 100, 90, D)],
        images: (38, 24, 7),
        fonts: (1, 26),
        third: (16, 12, 6),
        tp_af: 4,
        inline_js: &[(25, 20, true), (65, 25, true)],
        text: &[(8, 1.4), (40, 1.2), (75, 0.8)],
    },
    Spec {
        n: 13,
        label: "yelp",
        html_kb: 175,
        head_kb: 13,
        css: &[(120, 0.18, true)],
        js: &[(180, 130, 3, B), (70, 40, 80, A)],
        images: (28, 26, 6),
        fonts: (2, 30),
        third: (12, 10, 5),
        tp_af: 4,
        inline_js: &[(35, 30, true)],
        text: &[(10, 1.3), (50, 1.2)],
    },
    Spec {
        n: 14,
        label: "youtube",
        html_kb: 210,
        head_kb: 16,
        css: &[(90, 0.2, true)],
        js: &[(320, 260, 5, B), (110, 70, 90, D)],
        images: (32, 20, 9),
        fonts: (1, 24),
        third: (8, 10, 3),
        tp_af: 2,
        inline_js: &[(20, 40, true), (55, 35, true)],
        text: &[(8, 1.0), (40, 1.0)],
    },
    Spec {
        n: 15,
        label: "microsoft",
        html_kb: 62,
        head_kb: 7,
        css: &[(48, 0.3, true), (22, 0.35, true)],
        js: &[(75, 50, 4, B), (60, 35, 85, D)],
        images: (16, 30, 5),
        fonts: (2, 34),
        third: (7, 9, 3),
        tp_af: 1,
        inline_js: &[],
        text: &[(12, 1.8), (55, 1.2)],
    },
    Spec {
        n: 16,
        label: "twitter",
        // Profile page: 45 KB HTML, critical CSS already inlined by the
        // site (critical_fraction 1.0 ⇒ the rewrite is a no-op), CSS made
        // dependent on the HTML. Interleaving pushes ~10 KB.
        html_kb: 45,
        head_kb: 6,
        css: &[(6, 1.0, true), (80, 0.0, false)],
        js: &[(150, 110, 93, D)],
        images: (12, 18, 4),
        fonts: (1, 28),
        third: (3, 8, 1),
        tp_af: 1,
        inline_js: &[(14, 12, false)],
        text: &[(15, 2.0), (55, 1.5)],
    },
    Spec {
        n: 17,
        label: "cnn",
        // 369 requests to 81 servers: overwhelming third-party complexity.
        html_kb: 155,
        head_kb: 12,
        css: &[(95, 0.15, true)],
        js: &[(160, 120, 3, B), (120, 80, 60, A), (90, 50, 88, A)],
        images: (70, 18, 4),
        fonts: (2, 28),
        third: (210, 9, 80),
        tp_af: 40,
        inline_js: &[(20, 30, true), (50, 25, true), (80, 20, false)],
        text: &[(8, 1.2), (35, 1.2), (70, 0.8)],
    },
    Spec {
        n: 18,
        label: "wellsfargo",
        html_kb: 58,
        head_kb: 7,
        css: &[(65, 0.3, true)],
        js: &[(120, 80, 4, B)],
        images: (9, 26, 3),
        fonts: (2, 32),
        third: (4, 8, 2),
        tp_af: 1,
        inline_js: &[(40, 10, true)],
        text: &[(14, 1.8), (60, 1.0)],
    },
    Spec {
        n: 19,
        label: "bankofamerica",
        html_kb: 92,
        head_kb: 10,
        css: &[(85, 0.25, true), (30, 0.3, true)],
        js: &[(150, 100, 5, B), (60, 40, 85, D)],
        images: (11, 24, 4),
        fonts: (2, 30),
        third: (6, 9, 3),
        tp_af: 2,
        inline_js: &[(30, 15, true)],
        text: &[(12, 1.6), (55, 1.0)],
    },
    Spec {
        n: 20,
        label: "nytimes",
        html_kb: 130,
        head_kb: 11,
        css: &[(70, 0.2, true)],
        js: &[(190, 150, 4, B), (100, 60, 75, A)],
        images: (34, 22, 6),
        fonts: (3, 30),
        third: (60, 11, 20),
        tp_af: 10,
        inline_js: &[(25, 25, true), (60, 20, true)],
        text: &[(10, 1.5), (40, 1.3), (75, 0.8)],
    },
];

fn build(spec: &Spec) -> Page {
    let html = spec.html_kb * KB;
    let mut b = PageBuilder::new(
        &format!("w{}-{}", spec.n, spec.label),
        &format!("{}.com", spec.label),
        html,
        spec.head_kb * KB,
    );
    // A coalesced static host of the same infrastructure (the paper's §5
    // domain unification step merges these before the experiments).
    let static_origin = b.origin(&format!("static.{}.com", spec.label), 0, true);

    let mut first_css: Option<ResourceId> = None;
    for (i, &(kb, crit, blocking)) in spec.css.iter().enumerate() {
        let offset = if blocking { 200 + i * 600 } else { html - 600 - i };
        let mut s = ResourceSpec::css(
            if i % 2 == 0 { 0 } else { static_origin },
            kb * KB,
            offset.min(html - 1),
            crit,
        );
        s.render_blocking = blocking;
        s.above_fold = blocking;
        let id = b.resource(s);
        first_css.get_or_insert(id);
    }
    for &(kb, exec_ms, pos_pct, mode) in spec.js {
        let offset = (html * pos_pct / 100).clamp(100, html - 1);
        let mut s = ResourceSpec::js(static_origin, kb * KB, offset, exec_ms * MS);
        s.script_mode = mode;
        b.resource(s);
    }
    let (n_img, img_kb, n_af) = spec.images;
    for i in 0..n_img {
        let offset =
            (spec.head_kb * KB + (html - spec.head_kb * KB) * (i + 1) / (n_img + 2)).min(html - 1);
        // The first above-the-fold image is the hero: several times the
        // average size and a large share of the viewport. Its multi-RTT
        // transfer dominates the visual tail on image-led pages.
        let (size, weight) = if i == 0 && n_af > 0 {
            (img_kb * KB * 4, 3.0)
        } else if i < n_af {
            (img_kb * KB, 1.6)
        } else {
            (img_kb * KB, 0.0)
        };
        b.resource(ResourceSpec::image(static_origin, size, offset, i < n_af, weight));
    }
    let (n_fonts, font_kb) = spec.fonts;
    for _ in 0..n_fonts {
        match first_css {
            Some(css) => {
                b.resource(ResourceSpec::font(0, font_kb * KB, css));
            }
            None => {
                let mut s = ResourceSpec::font(0, font_kb * KB, ResourceId(0));
                s.discovery = crate::types::Discovery::Html { offset: 150 };
                b.resource(s);
            }
        }
    }
    let (n_third, third_kb, groups) = spec.third;
    let mut group_origins = Vec::new();
    for g in 0..groups {
        group_origins.push(b.origin(&format!("tp{g}.{}.net", spec.label), g + 1, false));
    }
    for i in 0..n_third {
        let origin = group_origins[i % group_origins.len().max(1)];
        let offset = (spec.head_kb * KB + i * 913) % (html - 200) + 100;
        if i < spec.tp_af {
            // Above-the-fold third-party content loads the way ads do: a
            // loader script discovered from the markup pulls an auction
            // script which pulls the creative — a multi-hop, network-bound
            // chain whose latency the first-party server cannot push away.
            // This is precisely why heavy third-party pages dilute push
            // gains (w17/cnn).
            let loader = b.resource(ResourceSpec::js_async(origin, 16 * KB, offset, 2 * MS));
            let auction =
                b.resource(ResourceSpec::script_loaded(origin, 12 * KB, loader, ResourceType::Js));
            // Creatives are heavy (rich media) — several times the site's
            // ordinary third-party objects.
            let mut creative = ResourceSpec::script_loaded(
                origin,
                3 * third_kb * KB,
                auction,
                ResourceType::Image,
            );
            creative.above_fold = true;
            creative.visual_weight = 1.1;
            b.resource(creative);
            continue;
        }
        let roll = i % 5;
        let r = if roll < 3 {
            ResourceSpec::image(origin, third_kb * KB, offset, false, 0.0)
        } else {
            ResourceSpec::js_async(origin, third_kb * KB, offset, 5 * MS)
        };
        b.resource(r);
    }
    for &(pos_pct, ms, cssom) in spec.inline_js {
        b.inline_script(html * pos_pct / 100, ms * MS, cssom);
    }
    for &(pos_pct, w) in spec.text {
        b.text_paint(html * pos_pct / 100, w * 0.6);
    }
    b.build()
}

/// Build real-world site wN (1-based). Panics outside 1..=20.
pub fn realworld_site(n: usize) -> Page {
    let spec = SPECS.iter().find(|s| s.n == n).unwrap_or_else(|| panic!("no site w{n}"));
    build(spec)
}

/// All twenty Table-1 sites in order.
pub fn realworld_set() -> Vec<Page> {
    SPECS.iter().map(build).collect()
}

/// The table-1 labels in order (for reports).
pub fn realworld_labels() -> Vec<&'static str> {
    SPECS.iter().map(|s| s.label).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_twenty_build_and_validate() {
        let set = realworld_set();
        assert_eq!(set.len(), 20);
        for p in &set {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn w1_matches_paper_structure() {
        let p = realworld_site(1);
        assert_eq!(p.html_size(), 236 * KB, "wikipedia HTML is 236 KB compressed");
        // Pushable budget near the paper's 1123 KB (within a factor).
        let pb = p.pushable_bytes();
        assert!((700 * KB..1600 * KB).contains(&pb), "pushable bytes {pb}");
    }

    #[test]
    fn w5_is_small_and_single_server() {
        let p = realworld_site(5);
        // 8 requests total in the paper: HTML + 7 subresources here.
        assert!(p.resources.len() <= 9, "craigslist has {} resources", p.resources.len());
        assert_eq!(p.server_group_count(), 1);
    }

    #[test]
    fn w16_ships_its_own_critical_css() {
        let p = realworld_site(16);
        let blocking: Vec<_> = p
            .subresources()
            .iter()
            .filter(|r| r.rtype == ResourceType::Css && r.render_blocking)
            .collect();
        assert_eq!(blocking.len(), 1);
        assert_eq!(blocking[0].critical_fraction, 1.0, "already optimized");
        assert!(blocking[0].size <= 8 * KB);
        assert_eq!(p.html_size(), 45 * KB);
    }

    #[test]
    fn w17_is_enormous_and_scattered() {
        let p = realworld_site(17);
        assert!(p.resources.len() > 300, "cnn had 369 requests; got {}", p.resources.len());
        assert!(p.server_group_count() > 60, "cnn hit 81 servers; got {}", p.server_group_count());
        assert!(p.pushable_fraction() < 0.4);
    }

    #[test]
    fn w7_has_dominant_blocking_head_script() {
        let p = realworld_site(7);
        let js = p
            .subresources()
            .iter()
            .filter(|r| r.is_parser_blocking_script())
            .max_by_key(|r| r.size)
            .unwrap();
        assert!(js.size >= 200 * KB);
        assert!(js.exec_us >= 300_000, "exec {}", js.exec_us);
    }

    #[test]
    fn w10_is_image_heavy_with_inline_js() {
        let p = realworld_site(10);
        let img_bytes: usize =
            p.by_type(ResourceType::Image).iter().map(|&i| p.resource(i).size).sum();
        let total: usize = p.subresources().iter().map(|r| r.size).sum();
        assert!(img_bytes * 2 > total, "images must dominate: {img_bytes}/{total}");
        let inline_ms: u64 = p.inline_scripts.iter().map(|s| s.exec_us).sum::<u64>() / 1000;
        assert!(inline_ms >= 150, "walmart inlines a lot of JS ({inline_ms} ms)");
    }

    #[test]
    fn labels_match_table_1() {
        let l = realworld_labels();
        assert_eq!(l[0], "wikipedia");
        assert_eq!(l[4], "craigslist");
        assert_eq!(l[15], "twitter");
        assert_eq!(l[19], "nytimes");
    }
}
