//! The paper's synthetic sites s1–s10 (§4.3).
//!
//! These are single-server sites ("we relocate content"), each an archetype
//! the paper uses to study custom push strategies in isolation. s1, s5 and
//! s8 are described in detail in the paper's case studies and are encoded
//! faithfully; the remaining sites are the surrounding template archetypes
//! (blog, shop, gallery, …) with diverse structure.

use crate::page::{Page, PageBuilder, ResourceSpec};
use crate::types::{ResourceId, ResourceType, ScriptMode};

const KB: usize = 1024;
const MS: u64 = 1000;

/// Build synthetic site `sN` (1-based). Panics outside 1..=10.
pub fn synthetic_site(n: usize) -> Page {
    match n {
        1 => s1_loading_icon(),
        2 => s2_landing(),
        3 => s3_blog(),
        4 => s4_shop(),
        5 => s5_late_blocking_js(),
        6 => s6_gallery(),
        7 => s7_docs(),
        8 => s8_early_refs_long_html(),
        9 => s9_font_heavy(),
        10 => s10_inline_optimized(),
        other => panic!("synthetic sites are s1..=s10, got s{other}"),
    }
}

/// All ten synthetic sites.
pub fn synthetic_set() -> Vec<Page> {
    (1..=10).map(synthetic_site).collect()
}

/// The custom push strategy the paper crafts per site (§4.3): resources
/// that appear above-the-fold or are required to paint it.
pub fn custom_strategy(page: &Page) -> Vec<ResourceId> {
    page.subresources()
        .iter()
        .filter(|r| {
            r.render_blocking
                || r.is_parser_blocking_script() && matches!(r.discovery, crate::types::Discovery::Html { offset } if offset < page.head_end)
                || (r.above_fold && r.rtype != ResourceType::Image)
                || (r.above_fold && r.rtype == ResourceType::Image && r.visual_weight >= 1.5)
        })
        .map(|r| r.id)
        .collect()
}

/// s1 — a single-page app showing a loading icon until the DOM is ready:
/// content appears only once DOM-blocking JS + CSS have run; the CSS
/// references hidden fonts. The custom strategy pushes the blocking set
/// (~309 KB) instead of everything (~1057 KB).
fn s1_loading_icon() -> Page {
    let mut b = PageBuilder::new("s1-loading-icon", "s1.test", 28 * KB, 3 * KB);
    // Blocking set: app CSS + framework JS + app JS ≈ 309 KB with fonts.
    let css = b.resource(ResourceSpec::css(0, 48 * KB, 400, 0.35));
    b.resource(ResourceSpec::js(0, 95 * KB, 900, 120 * MS));
    b.resource(ResourceSpec::js(0, 78 * KB, 1400, 60 * MS));
    // Hidden fonts referenced in the CSS.
    b.resource(ResourceSpec::font(0, 44 * KB, css));
    b.resource(ResourceSpec::font(0, 44 * KB, css));
    // The rest: images and deferred assets only visible after boot.
    for i in 0..12 {
        b.resource(ResourceSpec::image(0, 52 * KB, 4 * KB + i * 2 * KB, i < 4, 1.2));
    }
    b.resource(ResourceSpec::js_async(0, 60 * KB, 20 * KB, 25 * MS));
    // Almost no static text: the page paints late, via the app.
    b.text_paint(27 * KB, 0.3);
    b.build()
}

/// s2 — a typical product landing page.
fn s2_landing() -> Page {
    let mut b = PageBuilder::new("s2-landing", "s2.test", 46 * KB, 5 * KB);
    b.resource(ResourceSpec::css(0, 30 * KB, 300, 0.25));
    b.resource(ResourceSpec::css(0, 12 * KB, 700, 0.4));
    b.resource(ResourceSpec::js(0, 55 * KB, 1500, 35 * MS));
    let hero = b.resource(ResourceSpec::image(0, 180 * KB, 6 * KB, true, 4.0));
    let _ = hero;
    for i in 0..8 {
        b.resource(ResourceSpec::image(0, 30 * KB, 10 * KB + i * 4 * KB, i < 2, 0.8));
    }
    b.resource(ResourceSpec::js_async(0, 40 * KB, 40 * KB, 15 * MS));
    b.text_paint(8 * KB, 1.5);
    b.text_paint(30 * KB, 1.0);
    b.build()
}

/// s3 — a text-heavy blog.
fn s3_blog() -> Page {
    let mut b = PageBuilder::new("s3-blog", "s3.test", 64 * KB, 4 * KB);
    let css = b.resource(ResourceSpec::css(0, 22 * KB, 250, 0.3));
    b.resource(ResourceSpec::font(0, 35 * KB, css));
    b.resource(ResourceSpec::js_async(0, 25 * KB, 50 * KB, 8 * MS));
    for i in 0..5 {
        b.resource(ResourceSpec::image(0, 45 * KB, 12 * KB + i * 9 * KB, i == 0, 1.0));
    }
    for (off, w) in [(6, 2.0), (20, 1.5), (40, 1.5), (60, 1.0)] {
        b.text_paint(off * KB, w);
    }
    b.build()
}

/// s4 — a shop category page with a blocking tag manager in the head.
fn s4_shop() -> Page {
    let mut b = PageBuilder::new("s4-shop", "s4.test", 90 * KB, 8 * KB);
    b.resource(ResourceSpec::js(0, 34 * KB, 300, 45 * MS)); // tag manager
    b.resource(ResourceSpec::css(0, 55 * KB, 900, 0.2));
    b.resource(ResourceSpec::js(0, 120 * KB, 88 * KB, 90 * MS)); // app bundle at end
    for i in 0..20 {
        b.resource(ResourceSpec::image(0, 22 * KB, 10 * KB + i * 3 * KB, i < 6, 0.7));
    }
    b.text_paint(12 * KB, 1.0);
    b.text_paint(50 * KB, 1.0);
    b.inline_script(30 * KB, 12 * MS, true);
    b.build()
}

/// s5 — the paper's computation-bound case: a large HTML with a blocking
/// JS referenced *late* in the body which must wait for the CSSOM. The
/// transfer finishes faster with push (692 ms vs 1038 ms) but metrics do
/// not improve: the browser is computation- not network-bound, and the
/// large HTML leaves no network idle time.
fn s5_late_blocking_js() -> Page {
    let mut b = PageBuilder::new("s5-late-blocking-js", "s5.test", 175 * KB, 6 * KB);
    // Render-critical set (the custom strategy pushes these four).
    b.resource(ResourceSpec::css(0, 60 * KB, 400, 0.3));
    b.resource(ResourceSpec::css(0, 25 * KB, 800, 0.3));
    let mut logo = ResourceSpec::image(0, 18 * KB, 7 * KB, true, 2.0);
    logo.visual_weight = 2.0;
    b.resource(logo);
    b.resource(ResourceSpec::image(0, 26 * KB, 9 * KB, true, 1.5));
    // The late blocking script: CSSOM construction takes longer than its
    // transfer, so the browser is CPU-bound here.
    b.resource(ResourceSpec::js(0, 80 * KB, 168 * KB, 220 * MS));
    for i in 0..10 {
        b.resource(ResourceSpec::image(0, 35 * KB, 20 * KB + i * 12 * KB, false, 0.0));
    }
    for (off, w) in [(10, 1.5), (60, 1.0), (120, 1.0), (165, 0.5)] {
        b.text_paint(off * KB, w);
    }
    // Heavy style recalculation while parsing.
    b.inline_script(100 * KB, 60 * MS, true);
    b.build()
}

/// s6 — an image gallery (most bytes are below-the-fold images).
fn s6_gallery() -> Page {
    let mut b = PageBuilder::new("s6-gallery", "s6.test", 30 * KB, 3 * KB);
    b.resource(ResourceSpec::css(0, 14 * KB, 300, 0.5));
    b.resource(ResourceSpec::js(0, 28 * KB, 1200, 12 * MS));
    for i in 0..24 {
        b.resource(ResourceSpec::image(0, 65 * KB, 4 * KB + i * KB, i < 4, 1.4));
    }
    b.text_paint(5 * KB, 0.6);
    b.build()
}

/// s7 — documentation site: small, fast, a single stylesheet.
fn s7_docs() -> Page {
    let mut b = PageBuilder::new("s7-docs", "s7.test", 38 * KB, 2 * KB);
    b.resource(ResourceSpec::css(0, 9 * KB, 200, 0.6));
    b.resource(ResourceSpec::js_async(0, 12 * KB, 30 * KB, 4 * MS));
    b.resource(ResourceSpec::image(0, 8 * KB, 6 * KB, true, 0.8));
    for (off, w) in [(4, 2.0), (15, 1.5), (28, 1.0)] {
        b.text_paint(off * KB, w);
    }
    b.build()
}

/// s8 — the paper's "multi-RTT HTML with early references" case: the HTML
/// needs several round trips; after the first chunk the browser can already
/// request the six render-critical resources referenced early, so push
/// cannot beat the requests (no network idle time).
fn s8_early_refs_long_html() -> Page {
    let mut b = PageBuilder::new("s8-early-refs", "s8.test", 130 * KB, 5 * KB);
    // Six render-critical resources, all referenced within the first 4 KB
    // (inside the first TCP flight of the document).
    b.resource(ResourceSpec::css(0, 35 * KB, 500, 0.3));
    b.resource(ResourceSpec::css(0, 18 * KB, 900, 0.3));
    b.resource(ResourceSpec::js(0, 48 * KB, 1400, 40 * MS));
    b.resource(ResourceSpec::js(0, 30 * KB, 1900, 25 * MS));
    b.resource(ResourceSpec::image(0, 24 * KB, 2500, true, 2.0));
    b.resource(ResourceSpec::image(0, 20 * KB, 3200, true, 1.5));
    for i in 0..9 {
        b.resource(ResourceSpec::image(0, 40 * KB, 20 * KB + i * 11 * KB, false, 0.0));
    }
    for (off, w) in [(8, 1.5), (48, 1.0), (100, 1.0)] {
        b.text_paint(off * KB, w);
    }
    b.build()
}

/// s9 — font-heavy editorial page: hidden fonts gate the headline paint.
fn s9_font_heavy() -> Page {
    let mut b = PageBuilder::new("s9-fonts", "s9.test", 52 * KB, 4 * KB);
    let css = b.resource(ResourceSpec::css(0, 26 * KB, 300, 0.4));
    for _ in 0..4 {
        b.resource(ResourceSpec::font(0, 38 * KB, css));
    }
    b.resource(ResourceSpec::js(0, 20 * KB, 1000, 10 * MS));
    b.resource(ResourceSpec::image(0, 95 * KB, 8 * KB, true, 2.5));
    b.text_paint(10 * KB, 2.0);
    b.text_paint(40 * KB, 1.0);
    b.build()
}

/// s10 — an already-optimized page: critical CSS inlined (no external
/// blocking CSS), tiny deferred assets. Push has almost nothing to win.
fn s10_inline_optimized() -> Page {
    let mut b = PageBuilder::new("s10-optimized", "s10.test", 42 * KB, 6 * KB);
    // All CSS at end of body, non-blocking.
    let mut css = ResourceSpec::css(0, 28 * KB, 40 * KB, 1.0);
    css.render_blocking = false;
    css.above_fold = false;
    b.resource(css);
    let mut js = ResourceSpec::js(0, 35 * KB, 41 * KB, 20 * MS);
    js.script_mode = ScriptMode::Defer;
    b.resource(js);
    for i in 0..6 {
        b.resource(ResourceSpec::image(0, 25 * KB, 8 * KB + i * 5 * KB, i < 2, 1.0));
    }
    b.text_paint(7 * KB, 2.0);
    b.text_paint(25 * KB, 1.0);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sites_build_and_validate() {
        let set = synthetic_set();
        assert_eq!(set.len(), 10);
        for p in &set {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
            // §4.3: single server — every resource is pushable.
            assert_eq!(p.server_group_count(), 1, "{} not single-server", p.name);
            assert!((p.pushable_fraction() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn s1_custom_strategy_is_much_smaller_than_push_all() {
        // The paper: 309 KB custom vs 1057 KB push-all on s1.
        let p = synthetic_site(1);
        let custom = custom_strategy(&p);
        let custom_bytes: usize = custom.iter().map(|&id| p.resource(id).size).sum();
        let all_bytes = p.pushable_bytes();
        assert!(custom_bytes * 2 < all_bytes, "custom {custom_bytes} not ≪ all {all_bytes}");
        // Roughly the paper's magnitudes (within a factor).
        assert!((200 * KB..400 * KB).contains(&custom_bytes), "custom = {custom_bytes}");
        assert!((800 * KB..1400 * KB).contains(&all_bytes), "all = {all_bytes}");
    }

    #[test]
    fn s5_has_late_blocking_js() {
        let p = synthetic_site(5);
        let late_js = p
            .subresources()
            .iter()
            .find(|r| r.is_parser_blocking_script())
            .expect("s5 has a blocking script");
        match late_js.discovery {
            crate::types::Discovery::Html { offset } => {
                assert!(offset > p.html_size() * 9 / 10, "blocking JS must be near the end")
            }
            _ => panic!("blocking JS must be referenced from HTML"),
        }
    }

    #[test]
    fn s8_critical_resources_in_first_flight() {
        let p = synthetic_site(8);
        let early: Vec<_> = p
            .subresources()
            .iter()
            .filter(|r| matches!(r.discovery, crate::types::Discovery::Html { offset } if offset < 4096))
            .collect();
        assert_eq!(early.len(), 6, "six render-critical resources referenced early");
        assert!(p.html_size() > 100 * KB, "HTML must need multiple RTTs");
    }

    #[test]
    fn s10_has_no_render_blocking_css() {
        let p = synthetic_site(10);
        assert!(p.subresources().iter().all(|r| !r.render_blocking));
    }

    #[test]
    fn names_are_unique() {
        let set = synthetic_set();
        let mut names: Vec<_> = set.iter().map(|p| p.name.clone()).collect();
        names.dedup();
        assert_eq!(names.len(), 10);
    }
}
