//! Core website model types.
//!
//! A [`Page`](crate::page::Page) is a structural description of a recorded
//! website: the HTML document, every subresource, which origin serves what,
//! and — crucially for the paper — *where* in the HTML each resource is
//! referenced, whether it blocks parsing or rendering, and what it
//! contributes to the above-the-fold viewport. These are exactly the
//! structural properties §4–§5 of the paper identify as deciding whether
//! Server Push helps.

use serde::{Deserialize, Serialize};

/// Index of a resource within its page (`0` is always the HTML document).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ResourceId(pub usize);

/// Coarse content types, mirroring the paper's §4.2.1 type study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceType {
    /// The base document.
    Html,
    /// Stylesheets (render-blocking when referenced in `<head>`).
    Css,
    /// Scripts.
    Js,
    /// Images.
    Image,
    /// Web fonts (typically referenced from CSS).
    Font,
    /// Anything else (XHR payloads, JSON, media, …).
    Other,
}

impl ResourceType {
    /// File-extension-ish label used in URLs and reports.
    pub fn label(self) -> &'static str {
        match self {
            ResourceType::Html => "html",
            ResourceType::Css => "css",
            ResourceType::Js => "js",
            ResourceType::Image => "img",
            ResourceType::Font => "font",
            ResourceType::Other => "other",
        }
    }

    /// The `content-type` header value the replay server answers with.
    pub fn mime(self) -> &'static str {
        match self {
            ResourceType::Html => "text/html",
            ResourceType::Css => "text/css",
            ResourceType::Js => "application/javascript",
            ResourceType::Image => "image/webp",
            ResourceType::Font => "font/woff2",
            ResourceType::Other => "application/octet-stream",
        }
    }
}

/// How the browser discovers a resource — the discovery path bounds how
/// early a request can possibly be issued, which is what push shortcuts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Discovery {
    /// Referenced by a tag in the HTML at this byte offset.
    Html {
        /// Byte offset of the reference within the (wire-sized) document.
        offset: usize,
    },
    /// Referenced from within a CSS file (fonts, background images): only
    /// discoverable once that CSS has arrived and been parsed — the
    /// "hidden resources" the push guidelines worry about.
    Css {
        /// The stylesheet that references this resource.
        parent: ResourceId,
    },
    /// Inserted by a script: discoverable only after the script executes.
    Script {
        /// The script that loads this resource.
        parent: ResourceId,
    },
}

/// Script scheduling flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ScriptMode {
    /// Classic `<script src>`: blocks the parser; execution additionally
    /// waits for every pending stylesheet (CSSOM) above it.
    #[default]
    Blocking,
    /// `async`: fetched in parallel, executed when ready, never blocks.
    Async,
    /// `defer`: executed after parsing, before DOMContentLoaded.
    Defer,
}

/// One subresource (or the HTML document itself).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Resource {
    /// Identity within the page.
    pub id: ResourceId,
    /// Origin index into [`Page::origins`](crate::page::Page::origins).
    pub origin: usize,
    /// URL path (unique within the origin).
    pub path: String,
    /// Content type.
    pub rtype: ResourceType,
    /// Transfer size in bytes (compressed, as observed on the wire).
    pub size: usize,
    /// CPU time to evaluate the resource once fetched: script execution,
    /// stylesheet parse, image decode. Microseconds.
    pub exec_us: u64,
    /// How the browser finds it.
    pub discovery: Discovery,
    /// For scripts: scheduling mode. Ignored for other types.
    pub script_mode: ScriptMode,
    /// For CSS: does it block rendering (i.e. referenced in `<head>`)? CSS
    /// referenced at the end of `<body>` (the "no push optimized" rewrite)
    /// does not.
    pub render_blocking: bool,
    /// Painted inside the initial viewport?
    pub above_fold: bool,
    /// Contribution to visual completeness once painted (arbitrary units,
    /// normalized per page by the metrics crate).
    pub visual_weight: f64,
    /// For CSS: fraction of its rules needed to style above-the-fold
    /// content (what a penthouse-style critical-CSS extraction keeps).
    pub critical_fraction: f64,
}

impl Resource {
    /// The resource's URL as `https://host/path`.
    pub fn url(&self, host: &str) -> String {
        format!("https://{}{}", host, self.path)
    }

    /// Whether this is a script that blocks the parser.
    pub fn is_parser_blocking_script(&self) -> bool {
        self.rtype == ResourceType::Js && self.script_mode == ScriptMode::Blocking
    }
}

/// An origin (scheme+host) and the server group that answers for it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Origin {
    /// Host name.
    pub host: String,
    /// Server-group id: origins sharing a group share an IP and a TLS
    /// certificate listing both hosts as SANs, so HTTP/2 connection
    /// coalescing applies and content is *pushable* across them (§4.1).
    pub server_group: usize,
    /// True if this origin belongs to the site's own infrastructure (the
    /// §5 "unify domains of the same infrastructure" preprocessing may
    /// merge it into the main group).
    pub same_infra: bool,
}

/// A progressive paint point of the base document's own content: when the
/// renderer has laid out the HTML up to `offset` (and rendering is
/// unblocked), `weight` units of visual completeness appear.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TextPaint {
    /// Byte offset in the document.
    pub offset: usize,
    /// Visual weight contributed.
    pub weight: f64,
}

/// An inline `<script>` block embedded in the HTML: the parser stalls at
/// `offset` for `exec_us` (after waiting for pending CSSOM), with no
/// network fetch. w10 (walmart) in the paper inlines much of its JS, which
/// is why interleaving cannot help it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InlineScript {
    /// Byte offset in the document.
    pub offset: usize,
    /// Execution time in microseconds.
    pub exec_us: u64,
    /// Whether execution must wait for pending stylesheets (true for real
    /// DOM-touching scripts; false for e.g. analytics stubs).
    pub needs_cssom: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_url_formatting() {
        let r = Resource {
            id: ResourceId(1),
            origin: 0,
            path: "/static/app.js".into(),
            rtype: ResourceType::Js,
            size: 1000,
            exec_us: 500,
            discovery: Discovery::Html { offset: 100 },
            script_mode: ScriptMode::Blocking,
            render_blocking: false,
            above_fold: false,
            visual_weight: 0.0,
            critical_fraction: 0.0,
        };
        assert_eq!(r.url("cdn.example.com"), "https://cdn.example.com/static/app.js");
        assert!(r.is_parser_blocking_script());
    }

    #[test]
    fn mime_types() {
        assert_eq!(ResourceType::Html.mime(), "text/html");
        assert_eq!(ResourceType::Css.label(), "css");
    }

    #[test]
    fn serde_round_trip() {
        let r = Resource {
            id: ResourceId(2),
            origin: 1,
            path: "/a.css".into(),
            rtype: ResourceType::Css,
            size: 4096,
            exec_us: 200,
            discovery: Discovery::Css { parent: ResourceId(1) },
            script_mode: ScriptMode::Async,
            render_blocking: true,
            above_fold: true,
            visual_weight: 2.0,
            critical_fraction: 0.3,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: Resource = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
