//! Load the same page over HTTP/1.1 (six connections, no push) and over
//! HTTP/2 with and without Interleaving Push — the protocol generations
//! the paper spans, side by side.
//!
//! ```sh
//! cargo run --release --example h1_vs_h2 [site-number 1..20]
//! ```

use h2push::core::PushPlanner;
use h2push::strategies::Strategy;
use h2push::testbed::{replay, Protocol, ReplayConfig};
use h2push::webmodel::realworld_site;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let page = realworld_site(n);
    println!(
        "site: {} — {} KB HTML, {} requests, {} servers\n",
        page.name,
        page.html_size() / 1024,
        page.resources.len(),
        page.server_group_count()
    );

    let configs = [
        ("HTTP/1.1 (6 connections)", Protocol::H1, Strategy::NoPush),
        ("HTTP/2, no push", Protocol::H2, Strategy::NoPush),
        ("HTTP/2 + interleaving push", Protocol::H2, PushPlanner::static_recommendation(&page)),
    ];
    println!(
        "{:30} {:>10} {:>12} {:>12}",
        "configuration", "PLT [ms]", "SpeedIndex", "first paint"
    );
    for (label, protocol, strategy) in configs {
        let mut cfg = ReplayConfig::testbed(strategy);
        cfg.protocol = protocol;
        let out = replay(&page, &cfg).expect("replay completes");
        let l = &out.load;
        println!(
            "{:30} {:>10.0} {:>12.0} {:>12.0}",
            label,
            l.plt(),
            l.speed_index(),
            l.first_paint.unwrap().since(l.connect_end).as_millis_f64()
        );
    }
    println!("\nThe 2015 protocol jump (H1 → H2) and the paper's 2018 question");
    println!("(can push do better?) in one table.");
}
