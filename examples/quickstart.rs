//! Quickstart: replay one site under three strategies and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use h2push::core::evaluate;
use h2push::strategies::{critical_set, interleave_offset, push_all, Strategy};
use h2push::webmodel::synthetic_site;

fn main() {
    // s2 is the paper's product-landing-page archetype (§4.3).
    let page = synthetic_site(2);
    println!(
        "site: {} — {} resources, {} KB pushable",
        page.name,
        page.resources.len(),
        page.pushable_bytes() / 1024
    );

    let strategies = [
        ("no push", Strategy::NoPush),
        ("push all", push_all(&page, &[])),
        (
            "interleaving critical",
            Strategy::Interleaved {
                offset: interleave_offset(&page),
                critical: critical_set(&page),
                after: Vec::new(),
            },
        ),
    ];

    println!(
        "{:24} {:>10} {:>12} {:>12} {:>10}",
        "strategy", "PLT [ms]", "SpeedIndex", "first paint", "pushed KB"
    );
    for (name, strategy) in strategies {
        let e = evaluate(&page, strategy).expect("replay completes");
        println!(
            "{:24} {:>10.0} {:>12.0} {:>12.0} {:>10.0}",
            name,
            e.plt,
            e.speed_index,
            e.first_paint,
            e.pushed_bytes as f64 / 1024.0
        );
    }
    println!("\nEvery run is deterministic: rerun and the numbers are identical.");
}
