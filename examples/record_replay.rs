//! Mahimahi-style record-and-replay: record a site into a JSON database,
//! persist it, reload it, and replay deterministically (§4.1).
//!
//! ```sh
//! cargo run --release --example record_replay
//! ```

use h2push::strategies::Strategy;
use h2push::testbed::{replay, ReplayConfig};
use h2push::webmodel::{generate_site, CorpusKind, RecordDb};

fn main() {
    // "Browse" a site once: record every request/response pair.
    let page = generate_site(CorpusKind::Random, 1234);
    let db = RecordDb::record(&page);
    println!("recorded {} request/response pairs for {}", db.len(), page.name);

    // Persist the database like a Mahimahi record directory.
    let path = std::env::temp_dir().join("h2push-recorddb.json");
    std::fs::write(&path, db.to_json()).expect("write record db");
    println!("wrote {}", path.display());

    // Reload and sanity-check a lookup.
    let reloaded = RecordDb::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let root = reloaded.lookup(page.host_of(h2push::webmodel::ResourceId(0)), "/").unwrap();
    println!("replayed lookup: / → {} ({} bytes)", root.content_type, root.body_len);

    // Replay the recorded site twice; determinism is the whole point.
    let cfg = ReplayConfig::testbed(Strategy::NoPush);
    let a = replay(&page, &cfg).unwrap();
    let b = replay(&page, &cfg).unwrap();
    println!(
        "replay #1: PLT {:.1} ms, SpeedIndex {:.1} ms\nreplay #2: PLT {:.1} ms, SpeedIndex {:.1} ms",
        a.load.plt(),
        a.load.speed_index(),
        b.load.plt(),
        b.load.speed_index()
    );
    assert_eq!(a.load.plt(), b.load.plt());
    println!("bit-identical ✓");
}
