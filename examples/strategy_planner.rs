//! The §6 CDN scenario: measure all six paper strategies on a site and
//! let the planner choose (preferring fewer pushed bytes among ties).
//!
//! ```sh
//! cargo run --release --example strategy_planner [site-number 1..20]
//! ```

use h2push::core::PushPlanner;
use h2push::webmodel::realworld_site;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let page = realworld_site(n);
    println!("planning push strategy for {} …", page.name);

    let planner = PushPlanner { runs: 5, ..Default::default() };
    let plan = planner.plan(&page);

    println!("{:26} {:>12} {:>10} {:>11}", "candidate", "SpeedIndex", "PLT [ms]", "pushed KB");
    for (i, c) in plan.candidates.iter().enumerate() {
        let marker = if i == plan.chosen { "→" } else { " " };
        println!(
            "{marker}{:25} {:>12.0} {:>10.0} {:>11.0}",
            c.which.label(),
            c.speed_index,
            c.plt,
            c.pushed_bytes / 1024.0
        );
    }
    println!(
        "\nchosen: {} ({:+.1}% SpeedIndex vs no push)",
        plan.winner().which.label(),
        plan.improvement_pct()
    );
}
