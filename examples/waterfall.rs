//! Print a resource waterfall with and without Interleaving Push — the
//! per-resource view behind the paper's Fig. 5/Fig. 6 analysis.
//!
//! ```sh
//! cargo run --release --example waterfall [site-number 1..20]
//! ```

use h2push::strategies::{paper_strategy, PaperStrategy};
use h2push::testbed::{replay, ReplayConfig};
use h2push::webmodel::Discovery;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let page = h2push::webmodel::realworld_site(n);
    for which in [PaperStrategy::NoPush, PaperStrategy::PushCriticalOptimized] {
        let (variant, strategy) = paper_strategy(&page, which);
        let out = replay(&variant, &ReplayConfig::testbed(strategy)).unwrap();
        let l = &out.load;
        println!(
            "\n=== {} — {} === first paint {:.0} ms, SI {:.0} ms, PLT {:.0} ms",
            variant.name,
            which.label(),
            l.first_paint.unwrap().since(l.connect_end).as_millis_f64(),
            l.speed_index(),
            l.plt()
        );
        println!(
            "{:>4} {:>6} {:>9} {:>6} {:>9} {:>9} {:>9}",
            "id", "type", "size KB", "push", "disc ms", "loaded", "done"
        );
        for (i, r) in variant.resources.iter().enumerate().take(18) {
            let w = l.waterfall[i];
            let ms = |t: Option<h2push::netsim::SimTime>| {
                t.map(|t| format!("{:.0}", t.as_millis_f64())).unwrap_or_else(|| "-".into())
            };
            let disc = match r.discovery {
                Discovery::Html { .. } => "html",
                Discovery::Css { .. } => "css",
                Discovery::Script { .. } => "js",
            };
            println!(
                "{:>4} {:>6} {:>9.1} {:>6} {:>9} {:>9} {:>9}  via {}",
                i,
                r.rtype.label(),
                r.size as f64 / 1024.0,
                if w.pushed { "yes" } else { "" },
                ms(w.discovered),
                ms(w.loaded),
                ms(w.evaluated),
                disc
            );
        }
    }
}
