//! Print a traced resource waterfall with and without Interleaving Push —
//! the per-resource view behind the paper's Fig. 5/Fig. 6 analysis — and
//! write the text + JSON exports under `results/`.
//!
//! ```sh
//! cargo run --release --example waterfall [site-number 1..20]
//! ```

use h2push::strategies::{paper_strategy, PaperStrategy};
use h2push::testbed::{write_waterfall, RunPlan};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let page = h2push::webmodel::realworld_site(n);
    let seed = 42u64;
    for which in [PaperStrategy::NoPush, PaperStrategy::PushCriticalOptimized] {
        let (variant, strategy) = paper_strategy(&page, which);
        let run = RunPlan::new(&variant)
            .strategy(strategy.clone())
            .seed(seed)
            .traced()
            .run_one()
            .unwrap();
        let l = &run.outcome.load;
        println!(
            "\n=== {} — {} === first paint {:.0} ms, SI {:.0} ms, PLT {:.0} ms",
            variant.name,
            which.label(),
            l.first_paint.unwrap().since(l.connect_end).as_millis_f64(),
            l.speed_index(),
            l.plt()
        );
        let timeline = run.timeline.expect("traced run records a timeline");
        let (txt, json) = write_waterfall("results", &variant, &strategy, seed, &timeline).unwrap();
        print!("{}", std::fs::read_to_string(&txt).unwrap());
        println!("wrote {} and {}", txt.display(), json.display());
    }
}
