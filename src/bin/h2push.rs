//! `h2push` — command-line front end to the replay testbed.
//!
//! ```text
//! h2push sites                              list built-in sites
//! h2push replay <site> [options]           replay & report PLT/SpeedIndex
//! h2push plan <site> [--runs N]            pick the best of the six §5 strategies
//! h2push order <site> [--runs N]           the §4.2 computed push order
//! h2push har <site> [options] [-o f.har]   export a waterfall as HAR
//! h2push dump <site> [-o page.json]        export the site model as JSON
//!
//! <site>:    w1..w20 | s1..s10 | random:<seed> | top:<seed> | push:<seed>
//!            | file:<page.json>   (a serialized `webmodel::Page`)
//! --strategy no-push | push-all | push-critical | as-recorded |
//!            no-push-opt | push-all-opt | push-critical-opt   (default no-push)
//! --runs N   repetitions (default 1; medians reported when N > 1)
//! --mode     testbed | internet              (default testbed)
//! --warm     warm cache: all pushable resources are already cached
//! --json     machine-readable output
//! ```

use h2push::browser::to_har;
use h2push::core::PushPlanner;
use h2push::metrics::RunStats;
use h2push::strategies::{paper_strategy, push_all, push_as_recorded, PaperStrategy, Strategy};
use h2push::testbed::{compute_push_order, replay, run_config, Mode, Protocol, ReplayConfig};
use h2push::webmodel::{generate_site, realworld_site, synthetic_site, CorpusKind, Page};

fn usage() -> ! {
    eprintln!(
        "usage: h2push <sites|replay|plan|order|har|dump> [<site>] [--strategy S] [--runs N] \
         [--mode testbed|internet] [--h1] [--warm] [--seed N] [--json] [-o FILE]\n\
         site: w1..w20 | s1..s10 | random:<seed> | top:<seed> | push:<seed> | file:<page.json>"
    );
    std::process::exit(2);
}

fn parse_site(spec: &str) -> Option<Page> {
    if let Some(path) = spec.strip_prefix("file:") {
        let text =
            std::fs::read_to_string(path).map_err(|e| eprintln!("cannot read {path}: {e}")).ok()?;
        let page: Page =
            serde_json::from_str(&text).map_err(|e| eprintln!("cannot parse {path}: {e}")).ok()?;
        if let Err(e) = page.validate() {
            eprintln!("invalid page in {path}: {e}");
            return None;
        }
        return Some(page);
    }
    if let Some(rest) = spec.strip_prefix('w') {
        if let Ok(n) = rest.parse::<usize>() {
            if (1..=20).contains(&n) {
                return Some(realworld_site(n));
            }
        }
    }
    if let Some(rest) = spec.strip_prefix('s') {
        if let Ok(n) = rest.parse::<usize>() {
            if (1..=10).contains(&n) {
                return Some(synthetic_site(n));
            }
        }
    }
    for (prefix, kind) in [
        ("random:", CorpusKind::Random),
        ("top:", CorpusKind::Top),
        ("push:", CorpusKind::PushUsers),
    ] {
        if let Some(seed) = spec.strip_prefix(prefix) {
            if let Ok(seed) = seed.parse::<u64>() {
                return Some(generate_site(kind, seed));
            }
        }
    }
    None
}

struct Opts {
    strategy: String,
    runs: usize,
    mode: Mode,
    protocol: Protocol,
    warm: bool,
    seed: u64,
    json: bool,
    out: Option<String>,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        strategy: "no-push".into(),
        runs: 1,
        mode: Mode::Testbed,
        protocol: Protocol::H2,
        warm: false,
        seed: 42,
        json: false,
        out: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--strategy" => {
                i += 1;
                o.strategy = args.get(i).unwrap_or_else(|| usage()).clone();
            }
            "--runs" => {
                i += 1;
                o.runs = args.get(i).and_then(|a| a.parse().ok()).unwrap_or_else(|| usage());
            }
            "--mode" => {
                i += 1;
                o.mode = match args.get(i).map(|s| s.as_str()) {
                    Some("testbed") => Mode::Testbed,
                    Some("internet") => Mode::Internet,
                    _ => usage(),
                };
            }
            "--seed" => {
                i += 1;
                o.seed = args.get(i).and_then(|a| a.parse().ok()).unwrap_or_else(|| usage());
            }
            "--warm" => o.warm = true,
            "--h1" => o.protocol = Protocol::H1,
            "--json" => o.json = true,
            "-o" => {
                i += 1;
                o.out = Some(args.get(i).unwrap_or_else(|| usage()).clone());
            }
            _ => usage(),
        }
        i += 1;
    }
    o
}

/// Resolve a strategy name to the page variant + strategy to run.
fn resolve_strategy(page: &Page, name: &str) -> (Page, Strategy) {
    match name {
        "no-push" => (page.clone(), Strategy::NoPush),
        "push-all" => (page.clone(), push_all(page, &[])),
        "as-recorded" => (page.clone(), push_as_recorded(page)),
        "push-critical" => paper_strategy(page, PaperStrategy::PushCritical),
        "no-push-opt" => paper_strategy(page, PaperStrategy::NoPushOptimized),
        "push-all-opt" => paper_strategy(page, PaperStrategy::PushAllOptimized),
        "push-critical-opt" => paper_strategy(page, PaperStrategy::PushCriticalOptimized),
        other => {
            eprintln!("unknown strategy '{other}'");
            usage()
        }
    }
}

fn cmd_sites() {
    println!("real-world (Table 1 of the paper):");
    for n in 1..=20 {
        let p = realworld_site(n);
        println!(
            "  w{n:<3} {:<20} {:>4} KB HTML, {:>3} requests, {:>2} servers",
            p.name,
            p.html_size() / 1024,
            p.resources.len(),
            p.server_group_count()
        );
    }
    println!("synthetic (§4.3): s1..s10");
    println!("generated: random:<seed> | top:<seed> | push:<seed>");
}

fn cmd_replay(page: &Page, o: &Opts) {
    let (variant, strategy) = resolve_strategy(page, &o.strategy);
    let strategy = std::sync::Arc::new(strategy);
    let mut plts = Vec::new();
    let mut sis = Vec::new();
    let mut pushed = 0u64;
    let mut cancelled = 0u32;
    for r in 0..o.runs {
        let mut cfg: ReplayConfig =
            run_config(&strategy, o.mode, o.seed.wrapping_add(r as u64), &variant);
        cfg.protocol = o.protocol;
        if o.warm {
            cfg.warm_cache = variant.pushable();
        }
        match replay(&variant, &cfg) {
            Ok(out) => {
                plts.push(out.load.plt());
                sis.push(out.load.speed_index());
                pushed = out.server_pushed_bytes;
                cancelled = out.load.cancelled_pushes;
            }
            Err(e) => {
                eprintln!("run {r} failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let (p, s) = (RunStats::of(&plts), RunStats::of(&sis));
    if o.json {
        println!(
            "{}",
            serde_json::json!({
                "site": variant.name,
                "strategy": o.strategy,
                "runs": o.runs,
                "plt_ms": { "median": p.median, "mean": p.mean, "stderr": p.std_err },
                "speed_index_ms": { "median": s.median, "mean": s.mean, "stderr": s.std_err },
                "pushed_bytes": pushed,
                "cancelled_pushes": cancelled,
            })
        );
    } else {
        println!("site      {}", variant.name);
        println!("strategy  {}", o.strategy);
        println!("runs      {}", o.runs);
        println!("PLT       {:.1} ms (median; ±{:.1} σx̄)", p.median, p.std_err);
        println!("SpeedIdx  {:.1} ms (median; ±{:.1} σx̄)", s.median, s.std_err);
        println!("pushed    {:.1} KB, {} cancelled", pushed as f64 / 1024.0, cancelled);
    }
}

fn cmd_plan(page: &Page, o: &Opts) {
    let planner = PushPlanner { runs: o.runs.max(3), seed: o.seed, ..Default::default() };
    let plan = planner.plan(page);
    if o.json {
        let candidates: Vec<_> = plan
            .candidates
            .iter()
            .map(|c| {
                serde_json::json!({
                    "strategy": c.which.label(),
                    "speed_index_ms": c.speed_index,
                    "plt_ms": c.plt,
                    "pushed_bytes": c.pushed_bytes,
                })
            })
            .collect();
        println!(
            "{}",
            serde_json::json!({
                "site": page.name,
                "winner": plan.winner().which.label(),
                "improvement_pct": plan.improvement_pct(),
                "candidates": candidates,
            })
        );
        return;
    }
    println!("{:26} {:>12} {:>10} {:>11}", "candidate", "SpeedIndex", "PLT", "pushed KB");
    for (i, c) in plan.candidates.iter().enumerate() {
        let m = if i == plan.chosen { "→" } else { " " };
        println!(
            "{m}{:25} {:>12.0} {:>10.0} {:>11.0}",
            c.which.label(),
            c.speed_index,
            c.plt,
            c.pushed_bytes / 1024.0
        );
    }
    println!(
        "winner: {} ({:+.1}% SI vs no push)",
        plan.winner().which.label(),
        plan.improvement_pct()
    );
}

fn cmd_order(page: &Page, o: &Opts) {
    let order = compute_push_order(page, o.runs.max(5), o.seed);
    println!("computed push order for {} ({} resources):", page.name, order.len());
    for (i, id) in order.iter().enumerate() {
        let r = page.resource(*id);
        println!(
            "  {:>3}. [{:>5}] {:>8} B  {}",
            i + 1,
            r.rtype.label(),
            r.size,
            r.url(page.host_of(*id))
        );
    }
}

fn cmd_har(page: &Page, o: &Opts) {
    let (variant, strategy) = resolve_strategy(page, &o.strategy);
    let cfg = ReplayConfig::testbed(strategy);
    let out = replay(&variant, &cfg).unwrap_or_else(|e| {
        eprintln!("replay failed: {e}");
        std::process::exit(1);
    });
    let har = serde_json::to_string_pretty(&to_har(&variant, &out.load)).expect("HAR serializes");
    match &o.out {
        Some(path) => {
            std::fs::write(path, har).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path}");
        }
        None => println!("{har}"),
    }
}

fn cmd_dump(page: &Page, o: &Opts) {
    let json = serde_json::to_string_pretty(page).expect("page serializes");
    match &o.out {
        Some(path) => {
            std::fs::write(path, json).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(|s| s.as_str()) else { usage() };
    if cmd == "sites" {
        cmd_sites();
        return;
    }
    let Some(site_spec) = args.get(1) else { usage() };
    let Some(page) = parse_site(site_spec) else {
        eprintln!("unknown site '{site_spec}'");
        usage()
    };
    let opts = parse_opts(&args[2..]);
    match cmd {
        "replay" => cmd_replay(&page, &opts),
        "plan" => cmd_plan(&page, &opts),
        "order" => cmd_order(&page, &opts),
        "har" => cmd_har(&page, &opts),
        "dump" => cmd_dump(&page, &opts),
        _ => usage(),
    }
}
