//! # h2push — *Is the Web ready for HTTP/2 Server Push?* in Rust
//!
//! A full reproduction of Zimmermann, Wolters, Hohlfeld and Wehrle's
//! CoNEXT 2018 paper: a deterministic record-and-replay testbed for
//! HTTP/2 Server Push strategies, built from scratch — HPACK (RFC 7541),
//! HTTP/2 framing/streams/priorities (RFC 7540), a packet-level network
//! simulator with the paper's DSL profile, a Chromium-64-like browser
//! load/render model, an h2o-like replay server, and the paper's
//! **Interleaving Push** scheduler.
//!
//! This umbrella crate re-exports every subsystem; see `DESIGN.md` for the
//! crate map and `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! ## Quick start
//!
//! ```
//! use h2push::core::{evaluate, PushPlanner};
//! use h2push::strategies::Strategy;
//! use h2push::webmodel::synthetic_site;
//!
//! let page = synthetic_site(2);
//! let baseline = evaluate(&page, Strategy::NoPush).unwrap();
//! let plan = evaluate(&page, PushPlanner::static_recommendation(&page)).unwrap();
//! println!("SpeedIndex {:.0} → {:.0} ms", baseline.speed_index, plan.speed_index);
//! ```

// The blessed top-level surface: everything a typical experiment touches,
// importable without naming a subsystem crate. Anything deeper is reachable
// through the module aliases below, but is not part of the stable surface.
pub use h2push_browser::{Browser, BrowserConfig, LoadResult};
pub use h2push_core::{evaluate, Evaluation, PushPlanner};
pub use h2push_strategies::Strategy;
#[cfg(unix)]
pub use h2push_testbed::{
    load_page, CloseReason, LiveLimits, LiveLoadReport, LiveServer, LiveServerHandle,
    LiveServerStats,
};
pub use h2push_testbed::{Mode, ReplayInputs, ReplayOutcome, RunPlan, SweepPlan, SweepReport};
pub use h2push_trace::{Timeline, TraceHandle};
pub use h2push_webmodel::{generate_site, CorpusKind, Page};

/// Chromium-64-like browser load/render model.
pub use h2push_browser as browser;
/// The paper's contribution: evaluation API, interleaving push, planning.
pub use h2push_core as core;
/// The HTTP/1.1 baseline protocol.
pub use h2push_h1 as h1;
/// HTTP/2 wire protocol (RFC 7540).
pub use h2push_h2proto as h2proto;
/// HPACK header compression (RFC 7541).
pub use h2push_hpack as hpack;
/// PLT / SpeedIndex statistics.
pub use h2push_metrics as metrics;
/// Deterministic packet-level network simulation.
pub use h2push_netsim as netsim;
/// The h2o-like replay server with the interleaving scheduler.
pub use h2push_server as server;
/// Push strategies and computed push orders.
pub use h2push_strategies as strategies;
/// The record-and-replay testbed and all experiment drivers.
pub use h2push_testbed as testbed;
/// The zero-cost-when-off deterministic trace layer.
pub use h2push_trace as trace;
/// Website models, corpora and the record database.
pub use h2push_webmodel as webmodel;
