//! Cross-crate integration tests: the whole pipeline from website model
//! through protocol stack, network simulation, browser and metrics.

use h2push::core::{evaluate, PushPlanner};
use h2push::strategies::{
    critical_set, interleave_offset, paper_strategy, push_all, PaperStrategy, Strategy,
};
use h2push::testbed::{compute_push_order, replay, Mode, ReplayConfig, RunPlan};
use h2push::webmodel::{generate_site, realworld_site, synthetic_site, CorpusKind, RecordDb};

#[test]
fn paper_strategy_suite_runs_on_w16() {
    // Twitter profile: the already-critical-CSS-optimized page of §5.
    let page = realworld_site(16);
    let mut results = Vec::new();
    for which in PaperStrategy::ALL {
        let (variant, strategy) = paper_strategy(&page, which);
        let out = replay(&variant, &ReplayConfig::testbed(strategy)).unwrap();
        assert!(out.load.finished(), "{} did not finish", which.label());
        results.push((which, out));
    }
    let base_si = results
        .iter()
        .find(|(w, _)| *w == PaperStrategy::NoPush)
        .map(|(_, o)| o.load.speed_index())
        .unwrap();
    let pco = results
        .iter()
        .find(|(w, _)| *w == PaperStrategy::PushCriticalOptimized)
        .map(|(_, o)| o.load.speed_index())
        .unwrap();
    // The paper's w16 result: interleaving critical resources wins notably
    // even though the critical-CSS rewrite itself is a no-op here.
    assert!(
        pco < base_si * 0.90,
        "w16 interleaving should improve SI ≥10%: {pco:.0} vs {base_si:.0}"
    );
    // And it pushes far less than push-all-optimized (the paper reports
    // 10.2 KB; our model's critical set also carries the hero image and
    // fonts, so the budget is larger but still a fraction of push-all).
    let pushed_of = |w: PaperStrategy| {
        results.iter().find(|(x, _)| *x == w).map(|(_, o)| o.server_pushed_bytes).unwrap()
    };
    let crit = pushed_of(PaperStrategy::PushCriticalOptimized);
    let all = pushed_of(PaperStrategy::PushAllOptimized);
    assert!(crit * 2 < all, "w16 critical budget {crit} not ≪ push-all {all}");
}

#[test]
fn computed_push_order_is_stable_and_pushable() {
    let page = generate_site(CorpusKind::Random, 99);
    let a = compute_push_order(&page, 5, 7);
    let b = compute_push_order(&page, 5, 7);
    assert_eq!(a, b, "order computation must be deterministic");
    let pushable = page.pushable();
    // The order is computed from the origin connection: everything the
    // main server saw is pushable by definition (§4.2).
    for id in &a {
        assert!(pushable.contains(id), "{id:?} in computed order but not pushable");
    }
    // And it covers the pushable set that gets requested at all.
    assert!(!a.is_empty());
}

#[test]
fn push_all_uses_computed_order() {
    let page = generate_site(CorpusKind::Random, 17);
    let order = compute_push_order(&page, 3, 1);
    let strategy = push_all(&page, &order);
    let out = replay(&page, &ReplayConfig::testbed(strategy.clone())).unwrap();
    assert!(out.load.finished());
    assert_eq!(
        out.server_pushed_bytes as usize,
        strategy.pushed_bytes(&page),
        "server pushed exactly the strategy's bytes"
    );
}

#[test]
fn record_db_round_trip_preserves_replay() {
    let page = synthetic_site(3);
    let db = RecordDb::record(&page);
    let db2 = RecordDb::from_json(&db.to_json()).unwrap();
    assert_eq!(db.len(), db2.len());
    // Same replay regardless of which DB instance a server would load.
    let out = replay(&page, &ReplayConfig::testbed(Strategy::NoPush)).unwrap();
    assert!(out.load.finished());
}

#[test]
fn testbed_mode_is_far_less_variable_than_internet_mode() {
    let page = generate_site(CorpusKind::PushUsers, 5);
    let plan = RunPlan::new(&page).reps(9).seed(3);
    let tb = plan.clone().mode(Mode::Testbed).run().into_outcomes();
    let inet = plan.mode(Mode::Internet).run().into_outcomes();
    assert!(tb.len() >= 8 && inet.len() >= 8, "runs must complete");
    let spread = |outs: &[h2push::testbed::ReplayOutcome]| {
        let p: Vec<f64> = outs.iter().map(|o| o.load.plt()).collect();
        let s = h2push::metrics::RunStats::of(&p);
        s.std_dev
    };
    assert!(
        spread(&tb) * 2.0 < spread(&inet),
        "testbed σ {} should be well below internet σ {}",
        spread(&tb),
        spread(&inet)
    );
}

#[test]
fn interleaving_beats_default_push_on_late_css_large_html() {
    // The Fig. 5 mechanism end-to-end through the public API.
    let page = realworld_site(1); // wikipedia: 236 KB HTML
    let base = evaluate(&page, Strategy::NoPush).unwrap();
    let plain_push = evaluate(&page, Strategy::PushList { order: critical_set(&page) }).unwrap();
    let interleaved = evaluate(
        &page,
        Strategy::Interleaved {
            offset: interleave_offset(&page),
            critical: critical_set(&page),
            after: Vec::new(),
        },
    )
    .unwrap();
    // Plain push is a child of the HTML stream: it cannot bring the CSS
    // forward, so it performs like no push (Fig. 5b).
    assert!(
        (plain_push.speed_index - base.speed_index).abs() < base.speed_index * 0.12,
        "plain push should track no-push: {} vs {}",
        plain_push.speed_index,
        base.speed_index
    );
    // Interleaving breaks the document's monopoly.
    assert!(
        interleaved.speed_index < base.speed_index * 0.75,
        "interleaving must win ≥25% on w1: {} vs {}",
        interleaved.speed_index,
        base.speed_index
    );
}

#[test]
fn planner_prefers_cheaper_strategy_among_ties() {
    // On s7, push-all-optimized and push-critical-optimized tie on
    // SpeedIndex (within ~2%), but the critical variant pushes a fraction
    // of the bytes: the planner must pick it ("pushing less is
    // preferable", §4.2.1).
    let page = synthetic_site(7);
    let planner = PushPlanner { runs: 3, byte_tolerance: 0.05, ..Default::default() };
    let plan = planner.plan(&page);
    assert_eq!(plan.winner().which, PaperStrategy::PushCriticalOptimized);
    let pao = plan.candidates.iter().find(|c| c.which == PaperStrategy::PushAllOptimized).unwrap();
    assert!(plan.winner().pushed_bytes < pao.pushed_bytes / 2.0);
    assert!(plan.improvement_pct() < -15.0, "got {}%", plan.improvement_pct());
}

#[test]
fn cancelled_pushes_count_and_load_still_finishes() {
    // Push the same resources the browser will request immediately: on a
    // real network the promise beats most requests, but late pushes on a
    // *subresource* request race and get cancelled.
    let page = generate_site(CorpusKind::Random, 55);
    let strategy = push_all(&page, &[]);
    let out = replay(&page, &ReplayConfig::testbed(strategy)).unwrap();
    assert!(out.load.finished());
    // All pushes accepted (the promise precedes the HTML bytes).
    assert_eq!(out.load.cancelled_pushes, 0);
}

#[test]
fn six_strategies_all_finish_on_every_synthetic_site() {
    for n in 1..=10 {
        let page = synthetic_site(n);
        for which in PaperStrategy::ALL {
            let (variant, strategy) = paper_strategy(&page, which);
            let out = replay(&variant, &ReplayConfig::testbed(strategy))
                .unwrap_or_else(|e| panic!("s{n} × {}: {e}", which.label()));
            assert!(out.load.finished());
        }
    }
}
