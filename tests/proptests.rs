//! Property-based tests over the core data structures and invariants.

use h2push::h2proto::{
    DefaultScheduler, ErrorCode, Frame, PrioritySpec, PriorityTree, Scheduler, StreamSnapshot,
    DEFAULT_MAX_FRAME_SIZE, ROOT,
};
use h2push::hpack::{huffman, Decoder, Encoder, Header, HuffmanPolicy};
use h2push::metrics::{cdf_points, percentile, RunStats};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// HPACK
// ---------------------------------------------------------------------

fn header_strategy() -> impl Strategy<Value = Header> {
    // Names: lowercase token-ish; values: arbitrary visible bytes.
    (
        proptest::collection::vec(proptest::char::range('a', 'z'), 1..24),
        proptest::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(n, v)| Header {
            name: n.into_iter().collect::<String>().into_bytes(),
            value: v,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hpack_round_trips_any_header_list(
        headers in proptest::collection::vec(header_strategy(), 0..24),
        policy in prop_oneof![
            Just(HuffmanPolicy::Auto),
            Just(HuffmanPolicy::Never),
            Just(HuffmanPolicy::Always)
        ],
    ) {
        let mut enc = Encoder::new().with_policy(policy);
        let mut dec = Decoder::new();
        let block = enc.encode(&headers);
        let back = dec.decode(&block).unwrap();
        prop_assert_eq!(back, headers);
        // Table state stays synchronized.
        prop_assert_eq!(enc.table().size(), dec.table().size());
    }

    #[test]
    fn hpack_stateful_stream_round_trips(
        lists in proptest::collection::vec(
            proptest::collection::vec(header_strategy(), 0..8), 1..12),
    ) {
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        for headers in &lists {
            let block = enc.encode(headers);
            let back = dec.decode(&block).unwrap();
            prop_assert_eq!(&back, headers);
        }
    }

    #[test]
    fn huffman_round_trips_any_bytes(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut out = Vec::new();
        huffman::encode(&data, &mut out);
        prop_assert_eq!(out.len(), huffman::encoded_len(&data));
        prop_assert_eq!(huffman::decode(&out).unwrap(), data);
    }

    #[test]
    fn huffman_decoder_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = huffman::decode(&data); // may Err, must not panic
    }

    #[test]
    fn hpack_decoder_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut dec = Decoder::new();
        let _ = dec.decode(&data); // may Err, must not panic
    }

    #[test]
    fn truncated_header_blocks_never_panic(
        headers in proptest::collection::vec(header_strategy(), 1..12),
    ) {
        // Truncated HEADERS payloads are exactly what a dying connection
        // feeds the decoder; any prefix must decode or Err, never panic.
        let mut enc = Encoder::new();
        let block = enc.encode(&headers);
        for cut in 0..block.len() {
            let mut dec = Decoder::new();
            let _ = dec.decode(&block[..cut]);
        }
    }

    #[test]
    fn bit_flipped_header_blocks_never_panic(
        headers in proptest::collection::vec(header_strategy(), 1..12),
        flip in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut enc = Encoder::new();
        let mut block = enc.encode(&headers);
        let i = flip % block.len();
        block[i] ^= 1 << bit;
        let mut dec = Decoder::new();
        let _ = dec.decode(&block); // may Err or mis-decode, must not panic
    }
}

// ---------------------------------------------------------------------
// HTTP/2 frames
// ---------------------------------------------------------------------

fn frame_strategy() -> impl Strategy<Value = Frame> {
    let stream = 1u32..1000;
    prop_oneof![
        (stream.clone(), 0usize..20_000, any::<bool>()).prop_map(|(s, len, fin)| Frame::Data {
            stream: s,
            len,
            end_stream: fin
        }),
        (stream.clone(), proptest::collection::vec(any::<u8>(), 0..200), any::<bool>()).prop_map(
            |(s, block, fin)| Frame::Headers {
                stream: s,
                block: block.into(),
                end_stream: fin,
                end_headers: true,
                priority: None,
            }
        ),
        (stream.clone(), 0u32..100, 1u16..=256, any::<bool>()).prop_map(|(s, dep, w, e)| {
            Frame::Priority {
                stream: s,
                spec: PrioritySpec { depends_on: dep, weight: w, exclusive: e },
            }
        }),
        (stream.clone()).prop_map(|s| Frame::RstStream { stream: s, code: ErrorCode::Cancel }),
        (stream.clone(), 1u32..0x7fff_ffff)
            .prop_map(|(s, inc)| Frame::WindowUpdate { stream: s, increment: inc }),
        (stream, 2u32..1000, proptest::collection::vec(any::<u8>(), 0..100)).prop_map(
            |(s, p, block)| Frame::PushPromise {
                stream: s,
                promised: p * 2,
                block: block.into(),
                end_headers: true
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn frames_round_trip(frame in frame_strategy()) {
        let mut buf = Vec::new();
        frame.encode(&mut buf);
        let (decoded, used) = Frame::decode(&buf, 1 << 24).unwrap();
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn frame_decoder_never_panics(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = Frame::decode(&data, DEFAULT_MAX_FRAME_SIZE);
    }

    #[test]
    fn truncated_frames_err_and_never_panic(frame in frame_strategy()) {
        // Every strict prefix of a valid frame is incomplete: decode must
        // report an error (so the connection waits for more bytes or dies
        // gracefully), never panic, and never fabricate a frame.
        let mut buf = Vec::new();
        frame.encode(&mut buf);
        for cut in 0..buf.len() {
            prop_assert!(
                Frame::decode(&buf[..cut], 1 << 24).is_err(),
                "prefix of {cut}/{} bytes decoded", buf.len()
            );
        }
    }

    #[test]
    fn bit_flipped_frames_never_panic(
        frame in frame_strategy(),
        flip in any::<usize>(),
        bit in 0u8..8,
    ) {
        // A single flipped bit models in-flight corruption surviving the
        // checksum; the decoder may Err or produce a different (valid)
        // frame, but must never panic or read out of bounds.
        let mut buf = Vec::new();
        frame.encode(&mut buf);
        let i = flip % buf.len();
        buf[i] ^= 1 << bit;
        let _ = Frame::decode(&buf, DEFAULT_MAX_FRAME_SIZE);
        let _ = Frame::decode(&buf, 1 << 24);
    }

    #[test]
    fn frame_stream_reassembles_from_arbitrary_cuts(
        frames in proptest::collection::vec(frame_strategy(), 1..8),
        cut in 1usize..50,
    ) {
        // Serialize all frames, feed the decoder in `cut`-byte chunks.
        let mut wire = Vec::new();
        for f in &frames {
            f.encode(&mut wire);
        }
        let mut buf: Vec<u8> = Vec::new();
        let mut decoded = Vec::new();
        for chunk in wire.chunks(cut) {
            buf.extend_from_slice(chunk);
            while let Ok((f, used)) = Frame::decode(&buf, 1 << 24) {
                buf.drain(..used);
                decoded.push(f);
            }
        }
        prop_assert_eq!(decoded, frames);
    }
}

// ---------------------------------------------------------------------
// Adversarial frame sequences against a live endpoint
// ---------------------------------------------------------------------

use h2push::h2proto::{ConnLimits, Connection, Event, Settings, PREFACE};

/// Structure-aware hostile input: valid frame shapes (including the
/// control frames the benign [`frame_strategy`] omits) with adversarial
/// parameter ranges, so the fuzz reaches the enforcement paths instead of
/// dying at the framing layer.
fn adversarial_frame_strategy() -> impl Strategy<Value = Frame> {
    let stream = 0u32..64;
    prop_oneof![
        // Benign shapes, listed thrice to keep the mix mostly-valid (the
        // vendored prop_oneof has no weighted arms).
        frame_strategy(),
        frame_strategy(),
        frame_strategy(),
        (any::<bool>(), prop_oneof![Just(None), (0u32..0xffff_ffff).prop_map(Some)]).prop_map(
            |(ack, iw)| Frame::Settings {
                ack,
                settings: Settings { initial_window_size: iw, ..Settings::default() },
            }
        ),
        (any::<bool>(), any::<u64>())
            .prop_map(|(ack, payload)| Frame::Ping { ack, payload: payload.to_be_bytes() }),
        (0u32..100).prop_map(|ls| Frame::GoAway { last_stream: ls, code: ErrorCode::NoError }),
        (stream.clone(), proptest::collection::vec(any::<u8>(), 0..64), any::<bool>()).prop_map(
            |(s, block, eh)| Frame::Continuation {
                stream: s,
                block: block.into(),
                end_headers: eh,
            }
        ),
        (stream.clone(), 1u32..0xffff_ffff)
            .prop_map(|(s, inc)| Frame::WindowUpdate { stream: s, increment: inc }),
        stream.prop_map(|s| Frame::RstStream { stream: s, code: ErrorCode::Cancel }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn server_endpoint_survives_arbitrary_frame_sequences(
        frames in proptest::collection::vec(adversarial_frame_strategy(), 0..40),
        garbage in proptest::collection::vec(any::<u8>(), 0..64),
        cut in 1usize..600,
        strict in any::<bool>(),
    ) {
        // The core robustness property: any frame sequence — valid,
        // hostile, or trailing garbage, under any chunking and any limit
        // profile — may kill the connection with a *typed* error, but must
        // never panic and must always drain in bounded work (the in-proc
        // analogue of the replay watchdog).
        let mut srv = Connection::server(Settings::default());
        srv.set_limits(if strict { ConnLimits::strict() } else { ConnLimits::new() });
        let mut sched = DefaultScheduler::new();
        let mut wire = PREFACE.to_vec();
        Frame::Settings { ack: false, settings: Settings::default() }.encode(&mut wire);
        for f in &frames {
            f.encode(&mut wire);
        }
        wire.extend_from_slice(&garbage);

        let mut fatals = 0u32;
        let mut rounds = 0u64;
        for chunk in wire.chunks(cut) {
            srv.receive(chunk);
            while let Some(ev) = srv.poll_event() {
                rounds += 1;
                prop_assert!(rounds < 1_000_000, "event livelock");
                if let Event::ConnectionError { .. } = ev {
                    fatals += 1;
                }
            }
            loop {
                rounds += 1;
                prop_assert!(rounds < 1_000_000, "produce livelock");
                if srv.produce(usize::MAX, &mut sched).is_empty() {
                    break;
                }
            }
        }
        // At most one fatal error per connection lifetime, and a dead
        // connection knows it is dead.
        prop_assert!(fatals <= 1, "{fatals} connection errors surfaced");
        if fatals == 1 {
            prop_assert!(srv.is_dead());
        }
    }

    #[test]
    fn client_endpoint_survives_arbitrary_frame_sequences(
        frames in proptest::collection::vec(adversarial_frame_strategy(), 0..32),
        cut in 1usize..400,
    ) {
        // Same property from the browser's side: a hostile *server* can
        // push promises, flood control frames, or talk garbage; the
        // client endpoint stays panic-free and bounded.
        let mut cli = Connection::client(Settings::default());
        cli.set_limits(ConnLimits::strict());
        let mut sched = DefaultScheduler::new();
        cli.request(
            &[
                Header::new(":method", "GET"),
                Header::new(":scheme", "https"),
                Header::new(":authority", "fuzz.test"),
                Header::new(":path", "/"),
            ],
            None,
        );
        let mut wire = Vec::new();
        Frame::Settings { ack: false, settings: Settings::default() }.encode(&mut wire);
        for f in &frames {
            f.encode(&mut wire);
        }
        let mut rounds = 0u64;
        for chunk in wire.chunks(cut) {
            cli.receive(chunk);
            while cli.poll_event().is_some() {
                rounds += 1;
                prop_assert!(rounds < 1_000_000, "event livelock");
            }
            loop {
                rounds += 1;
                prop_assert!(rounds < 1_000_000, "produce livelock");
                if cli.produce(usize::MAX, &mut sched).is_empty() {
                    break;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Priority tree
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(u32, PrioritySpec),
    Reprioritize(u32, PrioritySpec),
    Remove(u32),
}

fn tree_op_strategy() -> impl Strategy<Value = TreeOp> {
    let spec = (0u32..40, 1u16..=256, any::<bool>()).prop_map(|(dep, w, e)| PrioritySpec {
        depends_on: dep,
        weight: w,
        exclusive: e,
    });
    prop_oneof![
        (1u32..40, spec.clone()).prop_map(|(id, s)| TreeOp::Insert(id, s)),
        (1u32..40, spec).prop_map(|(id, s)| TreeOp::Reprioritize(id, s)),
        (1u32..40).prop_map(TreeOp::Remove),
    ]
}

fn check_tree(tree: &PriorityTree) -> Result<(), TestCaseError> {
    // Traversal visits every stream exactly once (⇒ no cycles, no leaks).
    let trav = tree.traversal();
    prop_assert_eq!(trav.len(), tree.len());
    let mut sorted = trav.clone();
    sorted.sort_unstable();
    sorted.dedup();
    prop_assert_eq!(sorted.len(), trav.len());
    // Parent/child symmetry.
    for &id in &trav {
        let parent = tree.parent(id).expect("every stream has a parent");
        prop_assert!(tree.children(parent).contains(&id));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn priority_tree_invariants_hold(ops in proptest::collection::vec(tree_op_strategy(), 0..60)) {
        let mut tree = PriorityTree::new();
        for op in ops {
            match op {
                TreeOp::Insert(id, s) => tree.insert(id, s),
                TreeOp::Reprioritize(id, s) => tree.reprioritize(id, s),
                TreeOp::Remove(id) => tree.remove(id),
            }
            check_tree(&tree)?;
        }
    }

    #[test]
    fn scheduler_always_picks_a_ready_stream(
        ops in proptest::collection::vec(tree_op_strategy(), 0..30),
        ready_ids in proptest::collection::vec(1u32..40, 1..10),
    ) {
        let mut tree = PriorityTree::new();
        for op in ops {
            match op {
                TreeOp::Insert(id, s) => tree.insert(id, s),
                TreeOp::Reprioritize(id, s) => tree.reprioritize(id, s),
                TreeOp::Remove(id) => tree.remove(id),
            }
        }
        let snaps: Vec<StreamSnapshot> = ready_ids
            .iter()
            .map(|&id| StreamSnapshot { id, sendable: 100, sent: 0, is_push: id % 2 == 0 })
            .collect();
        let mut sched = DefaultScheduler::new();
        let pick = sched.pick(&snaps, &tree);
        let picked = pick.expect("ready streams exist ⇒ some pick");
        prop_assert!(ready_ids.contains(&picked));
        prop_assert!(picked != ROOT);
    }
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn run_stats_are_consistent(values in proptest::collection::vec(0.0f64..1e6, 1..60)) {
        let s = RunStats::of(&values);
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.std_err <= s.std_dev + 1e-9);
        let hw95 = s.ci_half_width(0.95);
        let hw995 = s.ci_half_width(0.995);
        if s.n > 1 {
            prop_assert!(hw995 >= hw95);
        }
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one(values in proptest::collection::vec(-1e3f64..1e3, 1..50)) {
        let pts = cdf_points(&values);
        prop_assert_eq!(pts.len(), values.len());
        for w in pts.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            prop_assert!(w[0].1 <= w[1].1);
        }
        prop_assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_are_ordered(values in proptest::collection::vec(-1e3f64..1e3, 2..50)) {
        let p10 = percentile(&values, 10.0);
        let p50 = percentile(&values, 50.0);
        let p90 = percentile(&values, 90.0);
        prop_assert!(p10 <= p50 && p50 <= p90);
    }
}

// ---------------------------------------------------------------------
// Network simulator
// ---------------------------------------------------------------------

use h2push::netsim::{Dir, NetEvent, Network, NetworkSpec, ServerSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn netsim_conserves_bytes(
        sends in proptest::collection::vec((any::<bool>(), 1usize..200_000), 1..6),
        loss in 0.0f64..0.03,
        seed in 0u64..1_000,
    ) {
        let mut spec = NetworkSpec::dsl_testbed();
        spec.loss = loss;
        spec.seed = seed;
        let mut net = Network::new(spec);
        let s = net.add_server(ServerSpec::default());
        let c = net.connect(s);
        let mut expected = [0usize; 2];
        for (down, bytes) in &sends {
            let dir = if *down { Dir::Down } else { Dir::Up };
            net.send(c, dir, *bytes);
            expected[if *down { 1 } else { 0 }] += bytes;
        }
        let mut got = [0usize; 2];
        let mut steps = 0u64;
        while let Some((_, ev)) = net.step() {
            steps += 1;
            prop_assert!(steps < 5_000_000, "runaway simulation");
            if let NetEvent::Delivered { dir, bytes, .. } = ev {
                got[if dir == Dir::Down { 1 } else { 0 }] += bytes;
            }
        }
        // Reliable delivery: every sent byte arrives exactly once, even
        // under loss (retransmission) — and never more.
        prop_assert_eq!(got[0], expected[0], "upstream bytes");
        prop_assert_eq!(got[1], expected[1], "downstream bytes");
    }

    #[test]
    fn netsim_identical_seeds_are_bit_identical(
        bytes in 1usize..300_000,
        seed in 0u64..500,
    ) {
        let run = |seed: u64| {
            let mut spec = NetworkSpec::dsl_testbed();
            spec.seed = seed;
            spec.loss = 0.01;
            let mut net = Network::new(spec);
            let s = net.add_server(ServerSpec::default());
            let c = net.connect(s);
            net.send(c, Dir::Down, bytes);
            let mut trace = Vec::new();
            while let Some((t, ev)) = net.step() {
                if let NetEvent::Delivered { bytes, .. } = ev {
                    trace.push((t, bytes));
                }
            }
            trace
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}

// ---------------------------------------------------------------------
// HTTP/1.1 codec
// ---------------------------------------------------------------------

use h2push::h1::codec as h1codec;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn h1_request_round_trips(
        path_segs in proptest::collection::vec("[a-z0-9]{1,12}", 1..5),
        host in "[a-z]{1,12}\\.(com|org|test)",
    ) {
        let path = format!("/{}", path_segs.join("/"));
        let wire = h1codec::encode_request(&host, &path, &[("accept", "*/*")]);
        let (req, used) = h1codec::parse_request(&wire).unwrap().unwrap();
        prop_assert_eq!(used, wire.len());
        prop_assert_eq!(req.path, path);
        prop_assert_eq!(req.host, host);
    }

    #[test]
    fn h1_response_round_trips(len in 0usize..10_000_000, status in prop_oneof![Just(200u16), Just(404u16)]) {
        let wire = h1codec::encode_response_head(status, len, "text/html");
        let (resp, used) = h1codec::parse_response(&wire).unwrap().unwrap();
        prop_assert_eq!(used, wire.len());
        prop_assert_eq!(resp.status, status);
        prop_assert_eq!(resp.content_length, len);
    }

    #[test]
    fn h1_parsers_never_panic(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = h1codec::parse_request(&data);
        let _ = h1codec::parse_response(&data);
    }
}
