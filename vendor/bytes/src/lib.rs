//! Offline, API-compatible subset of the `bytes` crate.
//!
//! The container this repo builds in has no crates.io access, so the
//! workspace vendors the handful of `bytes` APIs the hot path needs:
//! [`Bytes`] — an immutable, reference-counted byte slice whose `clone()`
//! and `slice()` are O(1) — and [`BytesMut`] — a growable scratch buffer
//! that can be frozen into a `Bytes` without copying.

use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Backing storage of a [`Bytes`]: either a borrowed `'static` slice
/// (zero allocation, zero copy) or a shared heap buffer. Wrapping a `Vec`
/// in the `Arc` directly (rather than `Arc<[u8]>`) matters: converting a
/// `Vec` to `Arc<[u8]>` copies the payload into a fresh allocation, while
/// `Arc<Vec<u8>>` just takes ownership.
#[derive(Clone)]
enum Data {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

impl Data {
    #[inline]
    fn as_slice(&self) -> &[u8] {
        match self {
            Data::Static(s) => s,
            Data::Shared(v) => v,
        }
    }
}

/// An immutable, cheaply cloneable slice of bytes.
///
/// Internally shared storage plus a window; `clone()` bumps a refcount and
/// `slice()` narrows the window, neither copies payload bytes. Empty and
/// `'static`-backed buffers allocate nothing at all.
#[derive(Clone)]
pub struct Bytes {
    data: Data,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer. Free: no allocation.
    pub const fn new() -> Self {
        Bytes { data: Data::Static(&[]), start: 0, end: 0 }
    }

    /// Wrap a static slice. O(1): borrowed, never copied.
    pub const fn from_static(data: &'static [u8]) -> Self {
        Bytes { data: Data::Static(data), start: 0, end: data.len() }
    }

    /// Copy a slice into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes in view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view of this buffer. O(1): shares the same storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of range for {}", self.len());
        Bytes { data: self.data.clone(), start: self.start + lo, end: self.start + hi }
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len());
        let head = self.slice(..at);
        self.start += at;
        head
    }

    /// Shorten the view to `len` bytes (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            self.end = self.start + len;
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.data.as_slice()[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        if v.is_empty() {
            return Bytes::new();
        }
        let end = v.len();
        Bytes { data: Data::Shared(Arc::new(v)), start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.to_vec()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self[..] == &other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self[..].iter()
    }
}

/// A growable byte buffer, freezable into an immutable [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Reserve room for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional)
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data)
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, b: u8) {
        self.buf.push(b)
    }

    /// Append a slice (`bytes`-style alias of [`extend_from_slice`]).
    ///
    /// [`extend_from_slice`]: BytesMut::extend_from_slice
    pub fn put_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data)
    }

    /// Resize to `len` bytes, filling with `fill`.
    pub fn resize(&mut self, len: usize, fill: u8) {
        self.buf.resize(len, fill)
    }

    /// Shorten to `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        self.buf.truncate(len)
    }

    /// Remove all bytes, keeping capacity.
    pub fn clear(&mut self) {
        self.buf.clear()
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.buf.split_off(at);
        BytesMut { buf: std::mem::replace(&mut self.buf, rest) }
    }

    /// Take the entire contents, leaving `self` empty (capacity kept 0).
    pub fn split(&mut self) -> BytesMut {
        BytesMut { buf: std::mem::take(&mut self.buf) }
    }

    /// Freeze into an immutable, shareable [`Bytes`]. Consumes the buffer
    /// without copying payload bytes.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl Extend<u8> for BytesMut {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        self.buf.extend(iter)
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> Self {
        BytesMut { buf }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut { buf: s.to_vec() }
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_slice_shares_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(b.len(), 5);
        let c = b.clone();
        assert_eq!(c, b);
    }

    #[test]
    fn bytes_split_to() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4]);
    }

    #[test]
    fn bytes_mut_freeze_round_trip() {
        let mut m = BytesMut::with_capacity(8);
        m.extend_from_slice(b"abc");
        m.put_u8(b'd');
        let frozen = m.freeze();
        assert_eq!(&frozen[..], b"abcd");
    }

    #[test]
    fn bytes_mut_split() {
        let mut m = BytesMut::from(&b"hello world"[..]);
        let head = m.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&m[..], b" world");
        let all = m.split();
        assert!(m.is_empty());
        assert_eq!(&all[..], b" world");
    }
}
