//! Offline, API-compatible subset of the `bytes` crate.
//!
//! The container this repo builds in has no crates.io access, so the
//! workspace vendors the handful of `bytes` APIs the hot path needs:
//! [`Bytes`] — an immutable, reference-counted byte slice whose `clone()`
//! and `slice()` are O(1) — and [`BytesMut`] — a growable scratch buffer
//! that can be frozen into a `Bytes` without copying.
//!
//! # Recycling
//!
//! Unlike upstream `bytes`, both types circulate their backing storage
//! through a thread-local pool so a steady-state producer/consumer loop
//! allocates nothing:
//!
//! * [`BytesMut`] owns a uniquely-held `Arc<Vec<u8>>`, so
//!   [`BytesMut::freeze`] moves the `Arc` into the [`Bytes`] — no copy
//!   *and no allocation* (upstream's `freeze` needs a fresh shared
//!   header per buffer).
//! * Dropping the last [`Bytes`] referencing a heap buffer — or a
//!   [`BytesMut`] that was never frozen — returns the `Arc` and its
//!   capacity to the pool instead of freeing them.
//! * [`BytesMut::new`] / [`with_capacity`](BytesMut::with_capacity)
//!   draw from the pool before asking the allocator.
//!
//! The net effect: `write → split().freeze() → consume → drop` cycles
//! reuse warm buffers after the first few iterations. The pool is
//! bounded (entry capacity and entry count) and accessed with
//! `LocalKey::try_with`, so drops that run during thread-local teardown
//! degrade to plain frees instead of aborting.

use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Thread-local recycle pool of uniquely-owned heap buffers. Private:
/// [`Bytes`]/[`BytesMut`] drops feed it and [`BytesMut`] construction
/// drains it; callers never see it.
mod pool {
    use std::cell::RefCell;
    use std::sync::Arc;

    /// Entries kept per thread. Enough for every in-flight wire chunk of
    /// a replay context; beyond this, drops free as usual.
    const MAX_POOLED: usize = 64;

    /// Largest per-entry capacity worth keeping. Bigger one-off buffers
    /// (bulk payloads) would pin memory for little reuse.
    const MAX_CAP: usize = 1 << 17;

    thread_local! {
        static POOL: RefCell<Vec<Arc<Vec<u8>>>> = const { RefCell::new(Vec::new()) };
    }

    /// Pop a pooled buffer (unique, cleared). `None` when the pool is
    /// empty or this thread is tearing down.
    pub(crate) fn take() -> Option<Arc<Vec<u8>>> {
        POOL.try_with(|p| p.borrow_mut().pop()).ok().flatten()
    }

    /// Offer a buffer back. Kept only when `arc` is the last reference
    /// (so reuse can't alias a live view), its capacity is modest, and
    /// the pool has room; otherwise it drops here. `try_with`: a `Bytes`
    /// dropped from another thread-local's destructor must not abort.
    pub(crate) fn give(mut arc: Arc<Vec<u8>>) {
        let Some(v) = Arc::get_mut(&mut arc) else { return };
        if v.capacity() > MAX_CAP {
            return;
        }
        v.clear();
        let _ = POOL.try_with(move |p| {
            let mut p = p.borrow_mut();
            if p.len() < MAX_POOLED {
                p.push(arc);
            }
        });
    }
}

/// Backing storage of a [`Bytes`]: either a borrowed `'static` slice
/// (zero allocation, zero copy) or a shared heap buffer. Wrapping a `Vec`
/// in the `Arc` directly (rather than `Arc<[u8]>`) matters: converting a
/// `Vec` to `Arc<[u8]>` copies the payload into a fresh allocation, while
/// `Arc<Vec<u8>>` just takes ownership.
#[derive(Clone)]
enum Data {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

impl Data {
    #[inline]
    fn as_slice(&self) -> &[u8] {
        match self {
            Data::Static(s) => s,
            Data::Shared(v) => v,
        }
    }
}

/// An immutable, cheaply cloneable slice of bytes.
///
/// Internally shared storage plus a window; `clone()` bumps a refcount and
/// `slice()` narrows the window, neither copies payload bytes. Empty and
/// `'static`-backed buffers allocate nothing at all. Dropping the last
/// reference to a heap buffer recycles it (see the crate docs).
#[derive(Clone)]
pub struct Bytes {
    data: Data,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer. Free: no allocation.
    pub const fn new() -> Self {
        Bytes { data: Data::Static(&[]), start: 0, end: 0 }
    }

    /// Wrap a static slice. O(1): borrowed, never copied.
    pub const fn from_static(data: &'static [u8]) -> Self {
        Bytes { data: Data::Static(data), start: 0, end: data.len() }
    }

    /// Copy a slice into a shared buffer (pooled when one is warm).
    pub fn copy_from_slice(data: &[u8]) -> Self {
        let mut m = BytesMut::with_capacity(data.len());
        m.extend_from_slice(data);
        m.freeze()
    }

    /// Number of bytes in view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view of this buffer. O(1): shares the same storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of range for {}", self.len());
        Bytes { data: self.data.clone(), start: self.start + lo, end: self.start + hi }
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len());
        let head = self.slice(..at);
        self.start += at;
        head
    }

    /// Shorten the view to `len` bytes (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            self.end = self.start + len;
        }
    }
}

impl Drop for Bytes {
    /// Recycle the heap buffer when this was the last reference. The
    /// window doesn't matter — only full ownership of the storage does,
    /// and `pool::give` verifies that via the refcount.
    fn drop(&mut self) {
        if matches!(self.data, Data::Shared(_)) {
            if let Data::Shared(arc) = std::mem::replace(&mut self.data, Data::Static(&[])) {
                pool::give(arc);
            }
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.data.as_slice()[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        if v.is_empty() {
            return Bytes::new();
        }
        let end = v.len();
        Bytes { data: Data::Shared(Arc::new(v)), start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.to_vec()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self[..].iter()
    }
}

/// A growable byte buffer, freezable into an immutable [`Bytes`].
///
/// Backed by a uniquely-held `Arc<Vec<u8>>` drawn from the recycle pool:
/// [`freeze`](BytesMut::freeze) hands the `Arc` straight to the `Bytes`
/// (no allocation, no copy), and dropping an unfrozen buffer returns it
/// to the pool. The `Option` is an implementation detail of `Drop`; it
/// is `Some` at every public-API boundary.
pub struct BytesMut {
    buf: Option<Arc<Vec<u8>>>,
}

impl BytesMut {
    /// An empty buffer (pooled storage when available).
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        let buf = match pool::take() {
            Some(mut arc) => {
                let v = Arc::get_mut(&mut arc).expect("pooled buffers are unique");
                debug_assert!(v.is_empty());
                if v.capacity() < cap {
                    v.reserve(cap - v.len());
                }
                arc
            }
            None => Arc::new(Vec::with_capacity(cap)),
        };
        BytesMut { buf: Some(buf) }
    }

    /// The backing vector. Uniqueness is a type invariant: the pool only
    /// stores sole-owner `Arc`s and nothing else hands out clones, so
    /// `get_mut` cannot fail.
    #[inline]
    fn vec(&mut self) -> &mut Vec<u8> {
        Arc::get_mut(self.buf.as_mut().expect("present until drop")).expect("uniquely owned")
    }

    #[inline]
    fn slice_ref(&self) -> &Vec<u8> {
        self.buf.as_ref().expect("present until drop")
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.slice_ref().len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.slice_ref().is_empty()
    }

    /// Capacity of the backing storage.
    pub fn capacity(&self) -> usize {
        self.slice_ref().capacity()
    }

    /// Reserve room for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.vec().reserve(additional)
    }

    /// Reserve exactly `additional` more bytes — no amortized overshoot,
    /// so recycled buffers converge on their real working size.
    pub fn reserve_exact(&mut self, additional: usize) {
        self.vec().reserve_exact(additional)
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.vec().extend_from_slice(data)
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, b: u8) {
        self.vec().push(b)
    }

    /// Append a slice (`bytes`-style alias of [`extend_from_slice`]).
    ///
    /// [`extend_from_slice`]: BytesMut::extend_from_slice
    pub fn put_slice(&mut self, data: &[u8]) {
        self.vec().extend_from_slice(data)
    }

    /// Resize to `len` bytes, filling with `fill`.
    pub fn resize(&mut self, len: usize, fill: u8) {
        self.vec().resize(len, fill)
    }

    /// Shorten to `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        self.vec().truncate(len)
    }

    /// Remove all bytes, keeping capacity.
    pub fn clear(&mut self) {
        self.vec().clear()
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    ///
    /// Unlike upstream this copies (both halves need unique storage and
    /// the backing buffer can't be cut in two); no hot path uses it.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let mut head = BytesMut::with_capacity(at);
        head.extend_from_slice(&self.slice_ref()[..at]);
        self.vec().drain(..at);
        head
    }

    /// Take the entire contents, leaving `self` an empty buffer (freshly
    /// drawn from the pool, so its capacity is warm in steady state).
    pub fn split(&mut self) -> BytesMut {
        std::mem::replace(self, BytesMut::new())
    }

    /// Freeze into an immutable, shareable [`Bytes`]. Consumes the buffer
    /// without copying payload bytes — and without allocating: the shared
    /// header moves from the `BytesMut` into the `Bytes`.
    pub fn freeze(mut self) -> Bytes {
        let arc = self.buf.take().expect("present until drop");
        if arc.is_empty() {
            pool::give(arc);
            return Bytes::new();
        }
        let end = arc.len();
        Bytes { data: Data::Shared(arc), start: 0, end }
    }
}

impl Drop for BytesMut {
    /// An unfrozen scratch buffer still recycles its storage.
    fn drop(&mut self) {
        if let Some(arc) = self.buf.take() {
            pool::give(arc);
        }
    }
}

impl Default for BytesMut {
    fn default() -> Self {
        BytesMut::new()
    }
}

impl Clone for BytesMut {
    fn clone(&self) -> Self {
        let mut c = BytesMut::with_capacity(self.len());
        c.extend_from_slice(self);
        c
    }
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for BytesMut {}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.slice_ref()
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        self.vec()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Extend<u8> for BytesMut {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        self.vec().extend(iter)
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> Self {
        BytesMut { buf: Some(Arc::new(buf)) }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        let mut m = BytesMut::with_capacity(s.len());
        m.extend_from_slice(s);
        m
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_slice_shares_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(b.len(), 5);
        let c = b.clone();
        assert_eq!(c, b);
    }

    #[test]
    fn bytes_split_to() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4]);
    }

    #[test]
    fn bytes_mut_freeze_round_trip() {
        let mut m = BytesMut::with_capacity(8);
        m.extend_from_slice(b"abc");
        m.put_u8(b'd');
        let frozen = m.freeze();
        assert_eq!(&frozen[..], b"abcd");
    }

    #[test]
    fn bytes_mut_split() {
        let mut m = BytesMut::from(&b"hello world"[..]);
        let head = m.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&m[..], b" world");
        let all = m.split();
        assert!(m.is_empty());
        assert_eq!(&all[..], b" world");
    }

    #[test]
    fn freeze_reuses_storage_without_allocating_headers() {
        // A write → freeze → drop cycle recycles: the second cycle's
        // buffer arrives with the first cycle's capacity already there.
        let mut m = BytesMut::new();
        m.extend_from_slice(&[7u8; 1024]);
        let frozen = m.split().freeze();
        assert_eq!(frozen.len(), 1024);
        drop(frozen); // last reference → storage returns to the pool
        let m2 = BytesMut::with_capacity(16);
        assert!(m2.slice_ref().capacity() >= 1024, "pooled capacity not reused");
    }

    #[test]
    fn shared_views_are_not_recycled_under_a_live_reader() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"payload");
        let a = m.split().freeze();
        let b = a.clone();
        drop(a); // refcount 2 → 1: must NOT pool while `b` is live
        assert_eq!(&b[..], b"payload");
    }
}
