//! Offline, API-compatible subset of `criterion`.
//!
//! Provides the macros and types the workspace benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion`, `BenchmarkGroup`,
//! `Bencher::iter`, `black_box`, `Throughput`) backed by a plain
//! wall-clock timer: warm up, run a fixed number of samples, report the
//! median per-iteration time. No statistics engine, plots, or comparison
//! baselines.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (accepted, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, None, f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.sample_size, self.throughput, f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`iter`](Bencher::iter).
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, recording one sample per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed call.
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, tp: Option<Throughput>, mut f: F) {
    let mut b = Bencher { samples: Vec::new(), sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let max = b.samples[b.samples.len() - 1];
    let extra = match tp {
        Some(Throughput::Bytes(n)) if median.as_nanos() > 0 => {
            let gib = n as f64 / median.as_secs_f64() / (1 << 30) as f64;
            format!("  {gib:.2} GiB/s")
        }
        Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
            let meps = n as f64 / median.as_secs_f64() / 1e6;
            format!("  {meps:.2} Melem/s")
        }
        _ => String::new(),
    };
    println!(
        "{name:<40} median {:>12?}  (min {:?} .. max {:?}, {} samples){extra}",
        median,
        min,
        max,
        b.samples.len()
    );
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }
}
