//! Offline, API-compatible subset of `proptest`.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the proptest surface its tests use: the `proptest!` macro,
//! `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`, `Just`, `any`,
//! numeric-range and tuple strategies, `collection::vec`, `char::range`,
//! regex-subset string strategies, and `.prop_map`.
//!
//! Differences from upstream: failing cases are reported but not shrunk,
//! and the generator is this crate's own deterministic PRNG.

use std::ops::{Range, RangeInclusive};

/// Deterministic PRNG driving all strategies (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// The fixed-seed generator used by the `proptest!` runner.
    pub fn deterministic() -> Self {
        Self::with_seed(0x9E37_79B9_7F4A_7C15)
    }

    /// Seeded generator.
    pub fn with_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `.prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// `prop_oneof!` support: uniform choice between boxed strategies.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Build from the candidate strategies.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Types with a canonical "any value" strategy.
pub trait ArbitraryValue: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Any value of `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// A `Vec` of values from `elem`, `size.start..size.end` elements long.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod char {
    //! Character strategies.

    use super::{Strategy, TestRng};

    /// Strategy for a character range.
    #[derive(Debug, Clone)]
    pub struct CharRange {
        lo: u32,
        hi: u32,
    }

    /// Characters in `lo..=hi`.
    pub fn range(lo: ::core::primitive::char, hi: ::core::primitive::char) -> CharRange {
        assert!(lo <= hi);
        CharRange { lo: lo as u32, hi: hi as u32 }
    }

    impl Strategy for CharRange {
        type Value = ::core::primitive::char;
        fn sample(&self, rng: &mut TestRng) -> ::core::primitive::char {
            let span = (self.hi - self.lo + 1) as u64;
            ::core::primitive::char::from_u32(self.lo + rng.below(span) as u32).unwrap_or('?')
        }
    }
}

mod regex;

impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        regex::Pattern::parse(self)
            .unwrap_or_else(|e| panic!("bad regex strategy {self:?}: {e}"))
            .sample(rng)
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure with its message.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

pub mod prelude {
    //! One-stop import for tests: `use proptest::prelude::*;`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Just, Map,
        ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };
}

/// Assert a condition inside a property, failing the case (not panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// Define property tests. Each `#[test] fn name(arg in strategy, ...)` body
/// runs `cases` times with freshly sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic();
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest `{}` failed at case {}/{}:\n{}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = TestRng::deterministic();
        let strat = (1u32..10, 0.0f64..1.0, 5u16..=7);
        for _ in 0..200 {
            let (a, b, c) = strat.sample(&mut rng);
            assert!((1..10).contains(&a));
            assert!((0.0..1.0).contains(&b));
            assert!((5..=7).contains(&c));
        }
    }

    #[test]
    fn regex_strings_match_shape() {
        let mut rng = TestRng::deterministic();
        for _ in 0..100 {
            let seg = Strategy::sample(&"[a-z0-9]{1,12}", &mut rng);
            assert!((1..=12).contains(&seg.len()), "{seg}");
            assert!(seg.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            let host = Strategy::sample(&"[a-z]{1,12}\\.(com|org|test)", &mut rng);
            let (name, tld) = host.split_once('.').expect("has dot");
            assert!((1..=12).contains(&name.len()));
            assert!(["com", "org", "test"].contains(&tld), "{host}");
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let mut rng = TestRng::deterministic();
        let strat = prop_oneof![Just(1u8), Just(2u8), (10u8..20).prop_map(|v| v)];
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!(v == 1 || v == 2 || (10..20).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn runner_executes_bodies(xs in crate::collection::vec(any::<u8>(), 0..8)) {
            prop_assert!(xs.len() < 8);
            prop_assert_eq!(xs.len(), xs.len());
        }
    }
}
