//! The regex subset string strategies generate from.
//!
//! Supports: literal characters, `\`-escapes, character classes with
//! ranges (`[a-z0-9]`), groups with alternation (`(com|org|test)`), and
//! `{m}` / `{m,n}` repetition of the preceding atom.

use crate::TestRng;

#[derive(Debug, Clone)]
pub enum Node {
    Lit(char),
    /// Expanded set of candidate characters.
    Class(Vec<char>),
    /// Alternation between sequences.
    Group(Vec<Vec<Node>>),
    /// `{m,n}` applied to an atom.
    Repeat(Box<Node>, usize, usize),
}

#[derive(Debug, Clone)]
pub struct Pattern {
    seq: Vec<Node>,
}

impl Pattern {
    pub fn parse(pattern: &str) -> Result<Pattern, String> {
        let mut chars = pattern.chars().peekable();
        let seq = parse_seq(&mut chars, false)?;
        if chars.next().is_some() {
            return Err("unbalanced `)`".into());
        }
        Ok(Pattern { seq })
    }

    pub fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for node in &self.seq {
            sample_node(node, rng, &mut out);
        }
        out
    }
}

type Chars<'a> = std::iter::Peekable<std::str::Chars<'a>>;

fn parse_seq(chars: &mut Chars, in_group: bool) -> Result<Vec<Node>, String> {
    let mut seq = Vec::new();
    while let Some(&c) = chars.peek() {
        if in_group && (c == ')' || c == '|') {
            break;
        }
        match c {
            '[' => {
                chars.next();
                seq.push(parse_class(chars)?);
            }
            '(' => {
                chars.next();
                let mut alts = vec![parse_seq(chars, true)?];
                loop {
                    match chars.peek() {
                        Some(')') => {
                            chars.next();
                            break;
                        }
                        Some('|') => {
                            chars.next();
                            alts.push(parse_seq(chars, true)?);
                        }
                        _ => return Err("unterminated group".into()),
                    }
                }
                seq.push(Node::Group(alts));
            }
            '{' => {
                chars.next();
                let (m, n) = parse_counts(chars)?;
                let prev = seq.pop().ok_or("`{` with no preceding atom")?;
                seq.push(Node::Repeat(Box::new(prev), m, n));
            }
            '\\' => {
                chars.next();
                let esc = chars.next().ok_or("trailing backslash")?;
                seq.push(Node::Lit(esc));
            }
            _ => {
                chars.next();
                seq.push(Node::Lit(c));
            }
        }
    }
    Ok(seq)
}

fn parse_class(chars: &mut Chars) -> Result<Node, String> {
    let mut set = Vec::new();
    loop {
        let c = chars.next().ok_or("unterminated character class")?;
        if c == ']' {
            break;
        }
        let c = if c == '\\' { chars.next().ok_or("trailing backslash in class")? } else { c };
        if chars.peek() == Some(&'-') {
            let mut ahead = chars.clone();
            ahead.next();
            match ahead.peek() {
                Some(&hi) if hi != ']' => {
                    chars.next();
                    chars.next();
                    if hi < c {
                        return Err(format!("bad range {c}-{hi}"));
                    }
                    for ch in c..=hi {
                        set.push(ch);
                    }
                    continue;
                }
                _ => {}
            }
        }
        set.push(c);
    }
    if set.is_empty() {
        return Err("empty character class".into());
    }
    Ok(Node::Class(set))
}

fn parse_counts(chars: &mut Chars) -> Result<(usize, usize), String> {
    let mut m = String::new();
    let mut n = String::new();
    let mut in_n = false;
    loop {
        let c = chars.next().ok_or("unterminated `{`")?;
        match c {
            '}' => break,
            ',' => in_n = true,
            d if d.is_ascii_digit() => {
                if in_n {
                    n.push(d)
                } else {
                    m.push(d)
                }
            }
            other => return Err(format!("bad repetition character `{other}`")),
        }
    }
    let m: usize = m.parse().map_err(|_| "bad repetition lower bound")?;
    let n: usize = if !in_n {
        m
    } else {
        n.parse().map_err(|_| "bad repetition upper bound")?
    };
    if n < m {
        return Err(format!("bad repetition {{{m},{n}}}"));
    }
    Ok((m, n))
}

fn sample_node(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::Class(set) => {
            let idx = rng.below(set.len() as u64) as usize;
            out.push(set[idx]);
        }
        Node::Group(alts) => {
            let idx = rng.below(alts.len() as u64) as usize;
            for n in &alts[idx] {
                sample_node(n, rng, out);
            }
        }
        Node::Repeat(inner, m, n) => {
            let count = m + rng.below((n - m + 1) as u64) as usize;
            for _ in 0..count {
                sample_node(inner, rng, out);
            }
        }
    }
}
