//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the `rand` surface this repo actually uses: `StdRng::seed_from_u64`,
//! `gen`, `gen_range` over integer/float ranges, and `gen_bool`.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! (but equally deterministic) stream than upstream `StdRng`, which is
//! fine for this repo: every consumer treats the RNG as an arbitrary
//! deterministic function of the seed.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable constructors.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an `Rng` via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range a value can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
range_float!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of `T` over its natural domain ([0,1) for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ with SplitMix64
    /// seed expansion.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 16);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(1..=6u8);
            assert!((1..=6).contains(&i));
            let n = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
