//! Offline, API-compatible subset of `serde`.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! value-tree flavored serde: `Serialize` renders a type into a JSON
//! [`value::Value`], `Deserialize` reads one back. The `serde_derive`
//! proc-macro crate (re-exported here, as upstream does with the `derive`
//! feature) generates both impls for plain structs, tuple structs, and
//! enums with unit or struct variants, honoring `#[serde(skip)]`.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Error, Value};

/// Render `self` as a JSON value tree.
pub trait Serialize {
    /// The value tree for `self`.
    fn serialize_value(&self) -> Value;
}

/// Rebuild `Self` from a JSON value tree.
pub trait Deserialize: Sized {
    /// Parse `Self` out of a value tree.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

macro_rules! serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::custom("expected unsigned integer"))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
serde_uint!(u8, u16, u32, u64, usize);

macro_rules! serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::custom("expected integer"))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().map(|f| f as f32).ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize_value(other)?)),
        }
    }
}

macro_rules! serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::custom("expected array (tuple)"))?;
                Ok(($($t::deserialize_value(
                    arr.get($n).ok_or_else(|| Error::custom("tuple too short"))?,
                )?,)+))
            }
        }
    )*};
}
serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}
