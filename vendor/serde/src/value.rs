//! The JSON-shaped value tree all (de)serialization goes through.

use std::fmt;

/// A JSON value. Objects preserve insertion order so serialized output is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object (ordered key → value pairs).
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// As string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// As bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric value coerced to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            Value::F64(n) => Some(n),
            _ => None,
        }
    }

    /// Numeric value coerced to `u64` (must be a non-negative integer).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) if n >= 0 => Some(n as u64),
            Value::F64(n) if n >= 0.0 && n.fract() == 0.0 => Some(n as u64),
            _ => None,
        }
    }

    /// Numeric value coerced to `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(n) if n <= i64::MAX as u64 => Some(n as i64),
            Value::I64(n) => Some(n),
            Value::F64(n) if n.fract() == 0.0 => Some(n as i64),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Externally tagged enum view: a single-entry object as
    /// `(variant_name, payload)`.
    pub fn as_variant(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Object(pairs) if pairs.len() == 1 => {
                Some((pairs[0].0.as_str(), &pairs[0].1))
            }
            _ => None,
        }
    }

    /// Write JSON text into `out`. `indent = Some(n)` pretty-prints with
    /// `n`-space indentation; `None` is compact.
    pub fn write_json(&self, out: &mut String, indent: Option<usize>, level: usize) {
        use fmt::Write;
        let newline = |out: &mut String, level: usize| {
            if let Some(n) = indent {
                out.push('\n');
                for _ in 0..n * level {
                    out.push(' ');
                }
            }
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Value::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Value::F64(f) if f.is_finite() => {
                // `{:?}` prints the shortest representation that round-trips.
                let _ = write!(out, "{f:?}");
            }
            Value::F64(_) => out.push_str("null"),
            Value::Str(s) => write_json_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, level + 1);
                    item.write_json(out, indent, level + 1);
                }
                newline(out, level);
                out.push(']');
            }
            Value::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, item)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, level + 1);
                    write_json_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    item.write_json(out, indent, level + 1);
                }
                newline(out, level);
                out.push('}');
            }
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    /// Compact JSON text.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_json(&mut out, None, 0);
        f.write_str(&out)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(v) => v.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
    )*};
}
eq_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// (De)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}
