//! Derive macros for the vendored serde subset.
//!
//! `syn`/`quote` are unavailable offline, so these derives walk the raw
//! `proc_macro::TokenTree` stream directly. Supported shapes — which cover
//! every serde-derived type in this workspace:
//!
//! * structs with named fields (`#[serde(skip)]` honored: skipped on
//!   serialize, `Default::default()` on deserialize);
//! * tuple structs (newtypes serialize transparently, wider ones as arrays);
//! * enums with unit variants (as strings) and struct variants (externally
//!   tagged objects), matching upstream serde's default representation.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

struct Field {
    name: String,
    skip: bool,
}

struct Variant {
    name: String,
    /// `None` for unit variants, `Some(fields)` for struct variants.
    fields: Option<Vec<Field>>,
}

enum Kind {
    Named(Vec<Field>),
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: Kind,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive: generated Deserialize impl parses")
}

type Iter = Peekable<proc_macro::token_stream::IntoIter>;

/// Skip any `#[...]` attributes; report whether one was `#[serde(skip)]`.
fn skip_attrs(iter: &mut Iter) -> bool {
    let mut skip = false;
    while let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() != '#' {
            break;
        }
        iter.next();
        if let Some(TokenTree::Group(g)) = iter.next() {
            let mut inner = g.stream().into_iter();
            if let Some(TokenTree::Ident(id)) = inner.next() {
                if id.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.next() {
                        let has_skip = args
                            .stream()
                            .into_iter()
                            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip"));
                        skip = skip || has_skip;
                    }
                }
            }
        }
    }
    skip
}

/// Skip `pub`, `pub(crate)`, etc.
fn skip_visibility(iter: &mut Iter) {
    if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        iter.next();
        if matches!(
            iter.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            iter.next();
        }
    }
}

/// Consume tokens of one type, up to (and including) a top-level comma.
/// Tracks `<`/`>` depth so commas between generic arguments don't split.
fn skip_type(iter: &mut Iter) {
    let mut depth = 0i32;
    while let Some(tt) = iter.peek() {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    iter.next();
                    return;
                }
                _ => {}
            }
        }
        iter.next();
    }
}

fn parse_named_fields(ts: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut iter = ts.into_iter().peekable();
    loop {
        let skip = skip_attrs(&mut iter);
        skip_visibility(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(tt) => panic!("serde_derive: unexpected token `{tt}` in struct fields"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type(&mut iter);
        fields.push(Field { name, skip });
    }
    fields
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut iter = ts.into_iter().peekable();
    let mut count = 0usize;
    while iter.peek().is_some() {
        skip_attrs(&mut iter);
        skip_visibility(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        skip_type(&mut iter);
        count += 1;
    }
    count
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = ts.into_iter().peekable();
    loop {
        skip_attrs(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(tt) => panic!("serde_derive: unexpected token `{tt}` in enum body"),
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                iter.next();
                Some(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive: tuple enum variants are not supported (variant `{name}`)")
            }
            _ => None,
        };
        if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            iter.next();
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    loop {
        skip_attrs(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(id)) => match id.to_string().as_str() {
                "pub" => {
                    if matches!(
                        iter.peek(),
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                    ) {
                        iter.next();
                    }
                }
                "struct" => {
                    let name = match iter.next() {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        other => panic!("serde_derive: expected struct name, got {other:?}"),
                    };
                    return match iter.next() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            Item { name, kind: Kind::Named(parse_named_fields(g.stream())) }
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            Item { name, kind: Kind::Tuple(count_tuple_fields(g.stream())) }
                        }
                        other => {
                            panic!("serde_derive: unsupported struct body for `{name}`: {other:?}")
                        }
                    };
                }
                "enum" => {
                    let name = match iter.next() {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        other => panic!("serde_derive: expected enum name, got {other:?}"),
                    };
                    return match iter.next() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            Item { name, kind: Kind::Enum(parse_variants(g.stream())) }
                        }
                        other => panic!("serde_derive: expected enum body for `{name}`: {other:?}"),
                    };
                }
                _ => {}
            },
            Some(_) => {}
            None => panic!("serde_derive: no struct or enum found in derive input"),
        }
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let mut out = String::new();
    out.push_str(&format!(
        "impl ::serde::Serialize for {name} {{\n    \
         fn serialize_value(&self) -> ::serde::value::Value {{\n"
    ));
    match &item.kind {
        Kind::Named(fields) => {
            out.push_str(
                "        let mut obj: ::std::vec::Vec<(::std::string::String, \
                 ::serde::value::Value)> = ::std::vec::Vec::new();\n",
            );
            for f in fields.iter().filter(|f| !f.skip) {
                let fname = &f.name;
                out.push_str(&format!(
                    "        obj.push((\"{fname}\".to_string(), \
                     ::serde::Serialize::serialize_value(&self.{fname})));\n"
                ));
            }
            out.push_str("        ::serde::value::Value::Object(obj)\n");
        }
        Kind::Tuple(1) => {
            out.push_str("        ::serde::Serialize::serialize_value(&self.0)\n");
        }
        Kind::Tuple(n) => {
            out.push_str("        ::serde::value::Value::Array(vec![\n");
            for i in 0..*n {
                out.push_str(&format!(
                    "            ::serde::Serialize::serialize_value(&self.{i}),\n"
                ));
            }
            out.push_str("        ])\n");
        }
        Kind::Enum(variants) => {
            out.push_str("        match self {\n");
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    None => out.push_str(&format!(
                        "            {name}::{vname} => \
                         ::serde::value::Value::Str(\"{vname}\".to_string()),\n"
                    )),
                    Some(fields) => {
                        let bindings: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        out.push_str(&format!(
                            "            {name}::{vname} {{ {} }} => {{\n",
                            bindings.join(", ")
                        ));
                        out.push_str(
                            "                let mut inner: \
                             ::std::vec::Vec<(::std::string::String, \
                             ::serde::value::Value)> = ::std::vec::Vec::new();\n",
                        );
                        for f in fields.iter().filter(|f| !f.skip) {
                            let fname = &f.name;
                            out.push_str(&format!(
                                "                inner.push((\"{fname}\".to_string(), \
                                 ::serde::Serialize::serialize_value({fname})));\n"
                            ));
                        }
                        out.push_str(&format!(
                            "                ::serde::value::Value::Object(vec![\
                             (\"{vname}\".to_string(), \
                             ::serde::value::Value::Object(inner))])\n            }}\n"
                        ));
                    }
                }
            }
            out.push_str("        }\n");
        }
    }
    out.push_str("    }\n}\n");
    out
}

fn field_expr(fname: &str, source: &str, owner: &str) -> String {
    format!(
        "{fname}: ::serde::Deserialize::deserialize_value({source}.get(\"{fname}\")\
         .ok_or_else(|| ::serde::value::Error::custom(\
         \"missing field `{fname}` in {owner}\"))?)?,\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let mut out = String::new();
    out.push_str(&format!(
        "impl ::serde::Deserialize for {name} {{\n    \
         fn deserialize_value(v: &::serde::value::Value) \
         -> ::std::result::Result<Self, ::serde::value::Error> {{\n"
    ));
    match &item.kind {
        Kind::Named(fields) => {
            out.push_str(&format!("        ::std::result::Result::Ok({name} {{\n"));
            for f in fields {
                if f.skip {
                    out.push_str(&format!(
                        "            {}: ::std::default::Default::default(),\n",
                        f.name
                    ));
                } else {
                    out.push_str("            ");
                    out.push_str(&field_expr(&f.name, "v", name));
                }
            }
            out.push_str("        })\n");
        }
        Kind::Tuple(1) => {
            out.push_str(&format!(
                "        ::std::result::Result::Ok({name}(\
                 ::serde::Deserialize::deserialize_value(v)?))\n"
            ));
        }
        Kind::Tuple(n) => {
            out.push_str(
                "        let arr = v.as_array().ok_or_else(|| \
                 ::serde::value::Error::custom(\"expected array\"))?;\n",
            );
            out.push_str(&format!("        ::std::result::Result::Ok({name}(\n"));
            for i in 0..*n {
                out.push_str(&format!(
                    "            ::serde::Deserialize::deserialize_value(arr.get({i})\
                     .ok_or_else(|| ::serde::value::Error::custom(\"tuple too short\"))?)?,\n"
                ));
            }
            out.push_str("        ))\n");
        }
        Kind::Enum(variants) => {
            let units: Vec<&Variant> = variants.iter().filter(|v| v.fields.is_none()).collect();
            let structs: Vec<&Variant> = variants.iter().filter(|v| v.fields.is_some()).collect();
            if !units.is_empty() {
                out.push_str("        if let Some(s) = v.as_str() {\n");
                out.push_str("            return match s {\n");
                for v in &units {
                    let vname = &v.name;
                    out.push_str(&format!(
                        "                \"{vname}\" => \
                         ::std::result::Result::Ok({name}::{vname}),\n"
                    ));
                }
                out.push_str(&format!(
                    "                other => ::std::result::Result::Err(\
                     ::serde::value::Error::custom(format!(\
                     \"unknown variant `{{other}}` of {name}\"))),\n"
                ));
                out.push_str("            };\n        }\n");
            }
            if !structs.is_empty() {
                out.push_str("        if let Some((tag, inner)) = v.as_variant() {\n");
                out.push_str("            return match tag {\n");
                for v in &structs {
                    let vname = &v.name;
                    out.push_str(&format!(
                        "                \"{vname}\" => \
                         ::std::result::Result::Ok({name}::{vname} {{\n"
                    ));
                    for f in v.fields.as_ref().unwrap() {
                        if f.skip {
                            out.push_str(&format!(
                                "                    {}: ::std::default::Default::default(),\n",
                                f.name
                            ));
                        } else {
                            out.push_str("                    ");
                            out.push_str(&field_expr(&f.name, "inner", name));
                        }
                    }
                    out.push_str("                }),\n");
                }
                out.push_str(&format!(
                    "                other => ::std::result::Result::Err(\
                     ::serde::value::Error::custom(format!(\
                     \"unknown variant `{{other}}` of {name}\"))),\n"
                ));
                out.push_str("            };\n        }\n");
            }
            out.push_str(&format!(
                "        ::std::result::Result::Err(::serde::value::Error::custom(\
                 \"expected enum {name}\"))\n"
            ));
        }
    }
    out.push_str("    }\n}\n");
    out
}
