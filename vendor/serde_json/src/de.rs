//! JSON text parsing (recursive descent).

use serde::value::{Error, Value};

/// Parse one JSON document; trailing whitespace only.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error::custom(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(Error::custom(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(pairs)),
                _ => return Err(Error::custom(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let code = self.hex4()?;
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => out.push('\u{FFFD}'),
                        }
                    }
                    _ => return Err(Error::custom("bad escape sequence")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at `b`.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| Error::custom("truncated \\u escape"))?;
            let d = (b as char).to_digit(16).ok_or_else(|| Error::custom("bad \\u escape"))?;
            code = code * 16 + d;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("bad number `{text}`")))
    }
}
