//! Offline, API-compatible subset of `serde_json`.
//!
//! Serializes the vendored [`serde`] value tree to JSON text and parses it
//! back, with `to_string`/`to_string_pretty`/`from_str`, a [`json!`] macro
//! (same tt-muncher shape as upstream), and a re-exported [`Value`].

pub use serde::value::{Error, Value};
use serde::{Deserialize, Serialize};

mod de;
mod ser;

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    ser::write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serialize to human-readable, indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    ser::write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Parse a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = de::parse(s)?;
    T::deserialize_value(&value)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize_value()
}

/// Build a [`Value`] from JSON-looking syntax, embedding Rust expressions.
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

/// Implementation detail of [`json!`] — the tt-muncher.
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    //////////// arrays ////////////
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    //////////// objects ////////////
    // Done.
    (@object $object:ident () () ()) => {};
    // Insert the current entry (trailing comma follows).
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $object.push((($($key)+).to_string(), $value));
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    // Insert the last entry (no trailing comma).
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        $object.push((($($key)+).to_string(), $value));
    };
    // Next value is `null`.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    // Next value is `true`.
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    // Next value is `false`.
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    // Next value is an array.
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    // Next value is a map.
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    // Next value is an expression followed by a comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    // Last value is an expression (no trailing comma).
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    // Munch a token into the current key.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    //////////// primary ////////////
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(vec![])
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object(vec![])
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
                ::std::vec::Vec::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_values() {
        let n = 3usize;
        let v = json!({
            "a": 1,
            "b": [true, null, { "c": n }],
            "d": { "e": "text", "f": -2.5 },
            "g": n + 1,
        });
        assert_eq!(v["a"], 1u64);
        assert_eq!(v["b"][0], true);
        assert!(v["b"][1].is_null());
        assert_eq!(v["b"][2]["c"], 3u64);
        assert_eq!(v["d"]["e"], "text");
        assert_eq!(v["d"]["f"], -2.5);
        assert_eq!(v["g"], 4u64);
    }

    #[test]
    fn round_trips_through_text() {
        let v = json!({
            "s": "he said \"hi\"\n",
            "n": 12345,
            "neg": -67,
            "f": 0.125,
            "arr": [1, 2, 3],
            "obj": { "nested": true },
            "nothing": null,
        });
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v, "mismatch for {text}");
        }
    }

    #[test]
    fn parses_standalone_literals() {
        assert_eq!(from_str::<Value>("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str::<Value>("\"x\"").unwrap(), Value::Str("x".into()));
        assert_eq!(from_str::<Value>("1e-3").unwrap(), Value::F64(1e-3));
        assert_eq!(from_str::<Value>("[1,2]").unwrap().as_array().unwrap().len(), 2);
        assert!(from_str::<Value>("{broken").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn float_formatting_round_trips() {
        for f in [0.3, 2.0, 1e-9, -12345.678, 1.0 / 3.0] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f, "{text}");
        }
    }
}
