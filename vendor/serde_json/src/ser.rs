//! JSON text output (delegates to the value tree's own writer).

use serde::value::Value;

/// Write `v` as JSON into `out`. `indent = Some(n)` pretty-prints with
/// `n`-space indentation; `None` is compact.
pub fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    v.write_json(out, indent, level)
}
